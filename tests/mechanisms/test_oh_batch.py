"""Regression tests for the vectorized raw-OH batch answering.

``_RawOHAnswerer.histogram()`` used to recompute |T|+1 prefixes, each
re-walking a root-to-leaf tree path — O(|T| h f) Python-level work — and
``ranges()`` looped ``range()`` per query.  Both now read one materialized
prefix array whose every entry must be *bitwise identical* to the scalar
tree walk (the engine's 50x batch speedup rides on this equivalence).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, Domain, Policy
from repro.mechanisms.ordered_hierarchical import OrderedHierarchicalMechanism


def _release(size, theta, fanout, seed=7, n=500):
    domain = Domain.integers("v", size)
    rng = np.random.default_rng(seed)
    db = Database.from_indices(domain, rng.integers(0, size, size=n))
    mech = OrderedHierarchicalMechanism(
        Policy.distance_threshold(domain, theta), 0.5, fanout=fanout, consistent=False
    )
    return mech.release(db, rng=np.random.default_rng(seed + 1))


@pytest.mark.parametrize("size", [2, 3, 7, 16, 37, 100, 257])
@pytest.mark.parametrize("fanout", [2, 3, 16])
def test_vectorized_prefixes_bitwise_identical(size, fanout):
    for theta in sorted({1, 2, 3, 5, min(16, size), min(37, size), size}):
        ans = _release(size, theta, fanout)
        scalar = np.array([ans.prefix(j) for j in range(-1, size)])
        assert np.array_equal(scalar, ans._materialized_prefixes()), (size, theta, fanout)


def test_histogram_matches_scalar_loop():
    ans = _release(100, 10, 4)
    loop = np.diff([ans.prefix(j) for j in range(-1, ans.size)])
    assert np.array_equal(loop, ans.histogram())


def test_ranges_match_scalar_calls():
    ans = _release(257, 37, 16)
    rng = np.random.default_rng(0)
    los = rng.integers(0, ans.size, 300)
    his = rng.integers(0, ans.size, 300)
    los, his = np.minimum(los, his), np.maximum(los, his)
    loop = np.array([ans.range(int(a), int(b)) for a, b in zip(los, his)])
    assert np.array_equal(loop, ans.ranges(los, his))


def test_ranges_validates_bounds():
    ans = _release(64, 8, 4)
    with pytest.raises(ValueError):
        ans.ranges([0, 5], [3, 64])
    with pytest.raises(ValueError):
        ans.ranges([-1], [3])
    with pytest.raises(ValueError):
        ans.ranges([5], [3])


def test_empty_batch():
    ans = _release(64, 8, 4)
    assert ans.ranges([], []).size == 0


def test_raw_histogram_is_linear_time_shape():
    # smoke-scale guard: a 20k-cell raw histogram must be effectively instant
    import time

    ans = _release(20_000, 500, 16, n=5_000)
    t0 = time.perf_counter()
    hist = ans.histogram()
    assert time.perf_counter() - t0 < 0.5
    assert hist.shape == (20_000,)
    # consistency with the S chain: summed cells telescope to the last S node
    assert np.isclose(hist.sum(), ans.prefix(ans.size - 1))
