"""Tests for the Ordered Mechanism (Section 7.1, Theorem 7.1)."""

import numpy as np
import pytest

from repro import Database, Domain, Policy
from repro.analysis import ordered_range_error_bound
from repro.mechanisms import OrderedMechanism, ReleasedCumulativeHistogram

HUGE_EPS = 1e9


@pytest.fixture
def db(small_ordered_domain, rng):
    return Database.from_indices(small_ordered_domain, rng.integers(0, 10, 500))


class TestRelease:
    def test_noiseless_is_exact(self, db):
        mech = OrderedMechanism(Policy.line(db.domain), HUGE_EPS)
        rel = mech.release(db, rng=0)
        assert np.allclose(rel.counts, db.cumulative_histogram())

    def test_scale_is_sensitivity_over_eps(self, small_ordered_domain):
        assert OrderedMechanism(Policy.line(small_ordered_domain), 0.5).scale == 2.0
        theta = OrderedMechanism(
            Policy.distance_threshold(small_ordered_domain, 3), 0.5
        )
        assert theta.scale == 6.0

    def test_consistency_enforced(self, db):
        mech = OrderedMechanism(Policy.line(db.domain), 0.05)
        rel = mech.release(db, rng=3)
        assert np.all(np.diff(rel.counts) >= -1e-9)
        assert rel.counts[0] >= 0
        assert rel.counts[-1] <= db.n

    def test_raw_mode_skips_inference(self, db):
        mech = OrderedMechanism(Policy.line(db.domain), 0.005, consistent=False)
        violated = any(
            np.any(np.diff(mech.release(db, rng=i).counts) < 0) for i in range(10)
        )
        assert violated  # raw noisy counts do violate the ordering

    def test_determinism(self, db):
        mech = OrderedMechanism(Policy.line(db.domain), 0.3)
        a = mech.release(db, rng=9).counts
        b = mech.release(db, rng=9).counts
        assert np.array_equal(a, b)

    def test_rejects_constrained_policy(self, db):
        from repro import Constraint, ConstraintSet, CountQuery

        q = CountQuery.from_mask(db.domain, np.arange(10) < 5)
        policy = Policy.line(db.domain).with_constraints(
            ConstraintSet([Constraint(q, int(q(db)[0]))])
        )
        with pytest.raises(ValueError):
            OrderedMechanism(policy, 1.0)

    def test_rejects_unordered_domain(self, grid_domain):
        with pytest.raises(TypeError):
            OrderedMechanism(Policy.differential_privacy(grid_domain), 1.0)


class TestReleasedObject:
    @pytest.fixture
    def rel(self, db):
        return OrderedMechanism(Policy.line(db.domain), HUGE_EPS).release(db, rng=0)

    def test_range_matches_truth(self, rel, db):
        assert rel.range(2, 6) == pytest.approx(db.range_count(2, 6))
        assert rel.range(0, 9) == pytest.approx(db.n)

    def test_prefix_boundaries(self, rel, db):
        assert rel.prefix(-1) == 0.0
        assert rel.prefix(9) == pytest.approx(db.n)
        with pytest.raises(IndexError):
            rel.prefix(10)

    def test_vectorized_ranges(self, rel, db):
        los = np.array([0, 2, 5])
        his = np.array([3, 6, 9])
        out = rel.ranges(los, his)
        expected = [db.range_count(a, b) for a, b in zip(los, his)]
        assert np.allclose(out, expected)

    def test_invalid_range(self, rel):
        with pytest.raises(ValueError):
            rel.range(5, 2)

    def test_histogram_from_differences(self, rel, db):
        assert np.allclose(rel.histogram(), db.histogram())

    def test_cdf(self, rel, db):
        cdf = rel.cdf()
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_quantile(self, rel, db):
        true_cum = db.cumulative_histogram()
        med = rel.quantile(0.5)
        assert true_cum[med] >= db.n / 2
        assert rel.quantile(0.0) == 0
        with pytest.raises(ValueError):
            rel.quantile(1.5)

    def test_released_object_validation(self):
        with pytest.raises(ValueError):
            ReleasedCumulativeHistogram(np.zeros((2, 2)), 5)


class TestTheorem71:
    """Empirical check of the 4/eps^2 range-query error bound."""

    @pytest.mark.parametrize("eps", [0.5, 1.0])
    def test_range_error_bound(self, eps, rng):
        domain = Domain.integers("v", 50)
        db = Database.from_indices(domain, rng.integers(0, 50, 1000))
        mech = OrderedMechanism(Policy.line(domain), eps, consistent=False)
        bound = ordered_range_error_bound(eps)
        assert mech.expected_range_query_error() == pytest.approx(bound)
        sq_errors = []
        for i in range(300):
            rel = mech.release(db, rng=i)
            est = rel.range(10, 30)
            sq_errors.append((est - db.range_count(10, 30)) ** 2)
        # mean over trials must respect the analytic bound (generous slack
        # for sampling noise)
        assert np.mean(sq_errors) <= bound * 1.3

    def test_error_is_domain_size_independent(self, rng):
        errors = {}
        for size in (20, 200):
            domain = Domain.integers("v", size)
            db = Database.from_indices(domain, rng.integers(0, size, 500))
            mech = OrderedMechanism(Policy.line(domain), 1.0, consistent=False)
            sq = []
            for i in range(200):
                rel = mech.release(db, rng=i)
                sq.append((rel.range(1, size // 2) - db.range_count(1, size // 2)) ** 2)
            errors[size] = np.mean(sq)
        # within a factor of ~2 of each other despite a 10x domain change
        assert errors[200] <= errors[20] * 2.5

    def test_inference_only_helps(self, rng):
        domain = Domain.integers("v", 64)
        values = np.zeros(800, dtype=np.int64)  # sparse: all mass on one value
        db = Database.from_indices(domain, values)
        eps = 0.3
        raw_err, fit_err = [], []
        for i in range(150):
            raw = OrderedMechanism(Policy.line(domain), eps, consistent=False).release(db, rng=i)
            fit = OrderedMechanism(Policy.line(domain), eps, consistent=True).release(db, rng=i)
            true = db.cumulative_histogram()
            raw_err.append(np.mean((raw.counts - true) ** 2))
            fit_err.append(np.mean((fit.counts - true) ** 2))
        # Section 7.1: constrained inference shrinks error a lot on sparse data
        assert np.mean(fit_err) < 0.5 * np.mean(raw_err)
