"""Tests for the Ordered Hierarchical mechanism (Section 7.2).

Includes the Figure 2(a) structural example, the Eqn (13)-(15) budget math,
degenerate-end equivalences and a direct privacy audit of the budgeting via
the worst-case Laplace privacy loss over exhaustively enumerated neighbors.
"""

import math

import numpy as np
import pytest

from repro import Database, Domain, Policy
from repro.core.neighbors import neighbor_pairs
from repro.mechanisms import (
    OrderedHierarchicalMechanism,
    OrderedMechanism,
    oh_error_constants,
    oh_expected_range_error,
    optimal_budget_split,
)

HUGE_EPS = 1e9


@pytest.fixture
def db(rng):
    domain = Domain.integers("v", 64)
    return Database.from_indices(domain, rng.integers(0, 64, 1500))


class TestStructure:
    def test_figure_2a_example(self):
        """Figure 2(a): theta = 4 over a 16-value domain -> 4 S nodes, four
        H subtrees of height 1 (fanout 4)."""
        domain = Domain.integers("v", 16)
        mech = OrderedHierarchicalMechanism(
            Policy.distance_threshold(domain, 4), 1.0, fanout=4
        )
        desc = mech.describe()
        assert desc["theta"] == 4
        assert desc["n_s_nodes"] == 4
        assert desc["s_node_boundaries"] == [3, 7, 11, 15]
        assert desc["n_h_trees"] == 4
        assert desc["h_tree_height"] == 1
        assert desc["eps_s"] + desc["eps_h"] == pytest.approx(1.0)

    def test_theta_one_has_no_trees(self):
        domain = Domain.integers("v", 16)
        mech = OrderedHierarchicalMechanism(Policy.line(domain), 1.0)
        desc = mech.describe()
        assert desc["h_tree_height"] == 0
        assert desc["n_h_trees"] == 0
        assert desc["n_s_nodes"] == 16
        assert desc["eps_s"] == pytest.approx(1.0)

    def test_partial_last_segment(self):
        domain = Domain.integers("v", 10)
        mech = OrderedHierarchicalMechanism(
            Policy.distance_threshold(domain, 4), 1.0, fanout=2
        )
        desc = mech.describe()
        assert desc["n_s_nodes"] == 3
        assert desc["s_node_boundaries"] == [3, 7, 9]

    def test_no_edges_rejected(self):
        domain = Domain.uniform_grid([10], spacings=[5.0])
        policy = Policy.distance_threshold(domain, 1.0)  # below spacing
        with pytest.raises(ValueError, match="no edges"):
            OrderedHierarchicalMechanism(policy, 1.0)


class TestBudgetMath:
    def test_constants_formulas(self):
        c1, c2 = oh_error_constants(100, 10, 16)
        assert c1 == pytest.approx(4 * 90 / 101)
        assert c2 == pytest.approx(8 * 15 * math.log(10, 16) ** 3 * 100 / 101)

    def test_degenerate_ends(self):
        c1, _ = oh_error_constants(100, 100, 16)
        assert c1 == 0.0
        _, c2 = oh_error_constants(100, 1, 16)
        assert c2 == 0.0

    def test_theta_validation(self):
        with pytest.raises(ValueError):
            oh_error_constants(100, 0, 16)
        with pytest.raises(ValueError):
            oh_error_constants(100, 101, 16)

    def test_optimal_split_minimizes(self):
        size, theta, fanout, eps = 400, 20, 16, 1.0
        eps_s, eps_h = optimal_budget_split(size, theta, fanout, eps)
        assert eps_s + eps_h == pytest.approx(eps)
        best = oh_expected_range_error(size, theta, fanout, eps_s, eps_h)
        for frac in np.linspace(0.05, 0.95, 19):
            other = oh_expected_range_error(size, theta, fanout, frac * eps, (1 - frac) * eps)
            assert best <= other + 1e-9

    def test_split_degenerate_ends(self):
        assert optimal_budget_split(100, 1, 16, 1.0) == (1.0, 0.0)
        assert optimal_budget_split(100, 100, 16, 1.0) == (0.0, 1.0)

    def test_expected_error_infinite_without_budget(self):
        assert oh_expected_range_error(100, 10, 16, 0.0, 1.0) == math.inf

    def test_uniform_and_explicit_split(self, db):
        pol = Policy.distance_threshold(db.domain, 8)
        uni = OrderedHierarchicalMechanism(pol, 1.0, budget_split="uniform")
        assert uni.eps_s == pytest.approx(0.5)
        explicit = OrderedHierarchicalMechanism(pol, 1.0, budget_split=0.25)
        assert explicit.eps_s == pytest.approx(0.25)
        with pytest.raises(ValueError):
            OrderedHierarchicalMechanism(pol, 1.0, budget_split=2.0)
        with pytest.raises(ValueError):
            OrderedHierarchicalMechanism(pol, 1.0, budget_split="nonsense")


class TestReleaseCorrectness:
    @pytest.mark.parametrize("theta", [2, 8, 30])
    @pytest.mark.parametrize("consistent", [True, False])
    def test_noiseless_exact(self, db, theta, consistent):
        pol = Policy.distance_threshold(db.domain, theta)
        mech = OrderedHierarchicalMechanism(
            pol, HUGE_EPS, fanout=4, consistent=consistent
        )
        rel = mech.release(db, rng=0)
        for lo, hi in [(0, 63), (5, 40), (17, 17), (0, 31), (32, 63), (3, 11)]:
            assert rel.range(lo, hi) == pytest.approx(
                db.range_count(lo, hi), abs=1e-5
            ), (theta, consistent, lo, hi)

    def test_raw_prefix_uses_s_nodes_at_boundaries(self, db):
        pol = Policy.distance_threshold(db.domain, 8)
        mech = OrderedHierarchicalMechanism(pol, HUGE_EPS, fanout=4, consistent=False)
        rel = mech.release(db, rng=0)
        cum = db.cumulative_histogram()
        assert rel.prefix(7) == pytest.approx(cum[7])
        assert rel.prefix(-1) == 0.0
        with pytest.raises(IndexError):
            rel.prefix(64)

    def test_histogram_view(self, db):
        pol = Policy.distance_threshold(db.domain, 8)
        mech = OrderedHierarchicalMechanism(pol, HUGE_EPS, fanout=4, consistent=False)
        rel = mech.release(db, rng=0)
        assert np.allclose(rel.histogram(), db.histogram(), atol=1e-5)

    def test_determinism(self, db):
        pol = Policy.distance_threshold(db.domain, 8)
        mech = OrderedHierarchicalMechanism(pol, 0.5)
        a = mech.release(db, rng=4).ranges([0, 10], [20, 50])
        b = mech.release(db, rng=4).ranges([0, 10], [20, 50])
        assert np.array_equal(a, b)

    def test_theta_one_matches_ordered_mechanism_error(self, db):
        """theta=1 degenerates to the ordered mechanism (same error regime)."""
        eps = 0.5
        oh = OrderedHierarchicalMechanism(Policy.line(db.domain), eps, consistent=False)
        om = OrderedMechanism(Policy.line(db.domain), eps, consistent=False)
        true = db.range_count(10, 40)
        oh_err, om_err = [], []
        for i in range(300):
            oh_err.append((oh.release(db, rng=i).range(10, 40) - true) ** 2)
            om_err.append((om.release(db, rng=i).range(10, 40) - true) ** 2)
        assert np.mean(oh_err) == pytest.approx(np.mean(om_err), rel=0.35)
        assert np.mean(oh_err) <= 2 * 4 / eps**2  # Theorem 7.1 regime


class TestEqn14Empirical:
    def test_error_formula_tracks_measurement(self, rng):
        """Raw OH error averaged over random ranges must sit near Eqn (14)."""
        domain = Domain.integers("v", 256)
        db = Database.from_indices(domain, rng.integers(0, 256, 3000))
        eps, theta, fanout = 1.0, 16, 16
        mech = OrderedHierarchicalMechanism(
            Policy.distance_threshold(domain, theta), eps, fanout=fanout,
            consistent=False,
        )
        predicted = mech.expected_range_query_error()
        los = rng.integers(0, 256, 400)
        his = np.maximum(los, rng.integers(0, 256, 400))
        cum = db.cumulative_histogram()
        truth = cum[his] - np.where(los > 0, cum[np.maximum(los - 1, 0)], 0)
        errs = []
        for i in range(60):
            rel = mech.release(db, rng=i)
            errs.append(np.mean((rel.ranges(los, his) - truth) ** 2))
        measured = np.mean(errs)
        # Eqn (14) is an average-case analytic estimate; require the same
        # order of magnitude
        assert predicted / 4 <= measured <= predicted * 4


class TestPrivacyAudit:
    @pytest.mark.parametrize("theta", [1, 2, 3])
    @pytest.mark.parametrize("fanout", [2, 3])
    @pytest.mark.parametrize("budget_split", ["uniform", "optimal"])
    def test_worst_case_privacy_loss_within_epsilon(self, theta, fanout, budget_split):
        """Directly audit the OH budgeting: over every neighbor pair of a
        small universe, the summed |delta|/scale across all released
        components must not exceed epsilon — for every (theta, fanout,
        split) configuration."""
        domain = Domain.integers("v", 6)
        policy = Policy.distance_threshold(domain, theta)
        epsilon = 1.0
        mech = OrderedHierarchicalMechanism(
            policy, epsilon, fanout=fanout, budget_split=budget_split
        )

        def components(db):
            """All measured numbers: S-node true values and H-node counts,
            each divided by its Laplace scale."""
            hist = db.histogram()
            cum = np.cumsum(hist)
            out = []
            k = mech.n_segments
            boundaries = np.minimum(np.arange(1, k + 1) * mech.theta, mech.size) - 1
            s_scale = mech.s_scale
            for b in boundaries:
                out.append(cum[b] / s_scale if s_scale > 0 else 0.0)
            if mech.height > 0:
                f, h = mech.fanout, mech.height
                seg_len = f**h
                for seg in range(k):
                    start = seg * mech.theta
                    stop = min(start + mech.theta, mech.size)
                    leaves = np.zeros(seg_len)
                    leaves[: stop - start] = hist[start:stop]
                    level = leaves
                    levels = [level]
                    for _ in range(h):
                        level = level.reshape(-1, f).sum(axis=1)
                        levels.append(level)
                    # levels[0] = leaves ... levels[h] = segment root;
                    # measured levels are depths 1..h, i.e. levels[0..h-1]
                    for lvl in levels[:h]:
                        out.extend(lvl / mech.h_scale)
            return np.array(out)

        worst = 0.0
        for d1, d2 in neighbor_pairs(policy, 2):
            loss = float(np.abs(components(d1) - components(d2)).sum())
            worst = max(worst, loss)
        assert worst <= epsilon + 1e-9
        assert worst > 0.5 * epsilon  # the budget is actually used

    def test_audit_at_optimal_split(self):
        domain = Domain.integers("v", 8)
        policy = Policy.distance_threshold(domain, 2)
        mech = OrderedHierarchicalMechanism(policy, 0.7, fanout=2)
        # the constructor's split must always satisfy eps_s + eps_h = eps
        assert mech.eps_s + mech.eps_h == pytest.approx(0.7)
