"""Tests for the Laplace mechanism under policies (Theorem 5.1)."""

import numpy as np
import pytest

from repro import Database, Domain, HistogramQuery, Partition, Policy, RangeQuery
from repro.mechanisms import LaplaceMechanism, laplace_histogram
from repro.mechanisms.base import laplace_noise


class TestLaplaceNoise:
    def test_zero_scale_is_exact(self, rng):
        assert np.all(laplace_noise(rng, 0.0, 100) == 0.0)

    def test_negative_scale_rejected(self, rng):
        with pytest.raises(ValueError):
            laplace_noise(rng, -1.0, 3)

    def test_variance_matches(self, rng):
        draws = laplace_noise(rng, 3.0, 200_000)
        assert np.var(draws) == pytest.approx(2 * 9.0, rel=0.05)


class TestLaplaceMechanism:
    def test_scale_is_sensitivity_over_epsilon(self, small_ordered_domain):
        p = Policy.differential_privacy(small_ordered_domain)
        m = LaplaceMechanism(p, 0.5, HistogramQuery(small_ordered_domain))
        assert m.sensitivity == 2.0
        assert m.scale == 4.0
        assert m.expected_squared_error == pytest.approx(32.0)

    def test_release_shape_and_determinism(self, small_db):
        p = Policy.differential_privacy(small_db.domain)
        m = LaplaceMechanism(p, 1.0, HistogramQuery(small_db.domain))
        out1 = m.release(small_db, rng=7)
        out2 = m.release(small_db, rng=7)
        assert out1.shape == (10,)
        assert np.array_equal(out1, out2)

    def test_noise_actually_added(self, small_db):
        p = Policy.differential_privacy(small_db.domain)
        m = LaplaceMechanism(p, 0.1, HistogramQuery(small_db.domain))
        assert not np.array_equal(m.release(small_db, rng=1), small_db.histogram())

    def test_unbiasedness(self, small_db):
        p = Policy.differential_privacy(small_db.domain)
        m = LaplaceMechanism(p, 1.0, RangeQuery(small_db.domain, 2, 5))
        true = small_db.range_count(2, 5)
        draws = [m.release(small_db, rng=i)[0] for i in range(400)]
        assert np.mean(draws) == pytest.approx(true, abs=0.5)

    def test_partition_policy_histogram_is_exact(self):
        # Section 5: S(h_P, G^P) = 0 at the partition granularity
        d = Domain.grid([4, 4])
        part = Partition.uniform_grid(d, [2, 2])
        policy = Policy.partitioned(part)
        db = Database.from_indices(d, np.arange(16))
        out = laplace_histogram(db, policy, 0.1, partition=part, rng=0)
        assert np.array_equal(out, np.full(4, 4.0))

    def test_epsilon_validation(self, small_ordered_domain):
        p = Policy.differential_privacy(small_ordered_domain)
        with pytest.raises(ValueError):
            LaplaceMechanism(p, 0.0, HistogramQuery(small_ordered_domain))

    def test_negative_sensitivity_rejected(self, small_ordered_domain):
        p = Policy.differential_privacy(small_ordered_domain)
        with pytest.raises(ValueError):
            LaplaceMechanism(p, 1.0, HistogramQuery(small_ordered_domain), sensitivity=-1)

    def test_domain_mismatch_rejected(self, small_ordered_domain, grid_domain):
        p = Policy.differential_privacy(small_ordered_domain)
        m = LaplaceMechanism(p, 1.0, HistogramQuery(small_ordered_domain))
        with pytest.raises(ValueError):
            m.release(Database.from_indices(grid_domain, [0]), rng=0)

    def test_constraint_violating_database_rejected(self, small_ordered_domain):
        from repro import Constraint, ConstraintSet, CountQuery

        q = CountQuery.from_mask(small_ordered_domain, np.arange(10) < 5)
        cs = ConstraintSet([Constraint(q, 3)])
        policy = Policy.full_domain(small_ordered_domain, cs)
        db = Database.from_indices(small_ordered_domain, [0, 1])  # count = 2 != 3
        m = LaplaceMechanism(policy, 1.0, HistogramQuery(small_ordered_domain), sensitivity=2.0)
        with pytest.raises(ValueError, match="constraints"):
            m.release(db, rng=0)


class TestPolicyUtilityOrdering:
    def test_weaker_policy_less_error(self, small_ordered_domain):
        """The central promise: weaker secrets => lower expected error."""
        from repro import CumulativeHistogramQuery

        q = CumulativeHistogramQuery(small_ordered_domain)
        dp = LaplaceMechanism(Policy.differential_privacy(small_ordered_domain), 1.0, q)
        line = LaplaceMechanism(Policy.line(small_ordered_domain), 1.0, q)
        assert line.expected_squared_error < dp.expected_squared_error
