"""Tests for constrained-histogram release (Section 8), including a direct
privacy audit against exhaustively enumerated constrained neighbors."""

import numpy as np
import pytest

from repro import Attribute, Database, Domain, Policy
from repro.constraints import MarginalConstraintSet
from repro.core.audit import laplace_realized_epsilon
from repro.mechanisms import ConstrainedHistogramMechanism


@pytest.fixture
def marginal_setup():
    domain = Domain([Attribute("A1", ["a1", "a2"]), Attribute("A2", ["b1", "b2"])])
    db = Database.from_values(
        domain, [("a1", "b1"), ("a1", "b2"), ("a2", "b1")]
    )
    constraints = MarginalConstraintSet(domain, [["A1"]], db)
    policy = Policy.full_domain(domain, constraints)
    return policy, db


class TestSensitivityDispatch:
    def test_marginal_full_domain(self, marginal_setup):
        policy, _ = marginal_setup
        mech = ConstrainedHistogramMechanism(policy, 1.0)
        # Theorem 8.4: 2 * size(C) = 2 * |A1| = 4
        assert mech.sensitivity == 4.0
        assert mech.scale == 4.0

    def test_explicit_override(self, marginal_setup):
        policy, _ = marginal_setup
        assert ConstrainedHistogramMechanism(policy, 1.0, sensitivity=6.0).scale == 6.0

    def test_unconstrained_falls_back_to_two(self, small_ordered_domain):
        policy = Policy.differential_privacy(small_ordered_domain)
        assert ConstrainedHistogramMechanism(policy, 1.0).sensitivity == 2.0


class TestRelease:
    def test_noiseless_exact(self, marginal_setup):
        policy, db = marginal_setup
        out = ConstrainedHistogramMechanism(policy, 1e9).release(db, rng=0)
        assert np.allclose(out, db.histogram(), atol=1e-6)

    def test_rejects_violating_database(self, marginal_setup):
        policy, db = marginal_setup
        bad = db.replace(0, db.domain.index_of(("a2", "b2")))
        mech = ConstrainedHistogramMechanism(policy, 1.0)
        with pytest.raises(ValueError):
            mech.release(bad, rng=0)

    def test_expected_error(self, marginal_setup):
        policy, _ = marginal_setup
        mech = ConstrainedHistogramMechanism(policy, 1.0)
        assert mech.expected_squared_error == pytest.approx(2 * 4 * 16.0)


class TestEndToEndPrivacy:
    def test_realized_epsilon_within_budget(self, marginal_setup):
        """The audit that ties Section 8 together: with noise calibrated to
        the Theorem 8.4 sensitivity, the realized privacy loss over the
        exact constrained neighbor set is exactly epsilon."""
        policy, db = marginal_setup
        epsilon = 0.8
        mech = ConstrainedHistogramMechanism(policy, epsilon)
        realized = laplace_realized_epsilon(
            lambda d: d.histogram(), policy, mech.scale, n=3
        )
        assert realized <= epsilon + 1e-9
        # the bound is tight for this construction (Theorem 8.4 equality)
        assert realized == pytest.approx(epsilon)

    def test_dp_calibration_would_leak(self, marginal_setup):
        """Using the unconstrained sensitivity (2) under the constrained
        policy overshoots epsilon — the Section 3.2 attack, quantified."""
        policy, _ = marginal_setup
        epsilon = 0.8
        dp_scale = 2.0 / epsilon
        realized = laplace_realized_epsilon(
            lambda d: d.histogram(), policy, dp_scale, n=3
        )
        assert realized > epsilon * 1.5
