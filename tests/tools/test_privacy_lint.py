"""Privacy-flow lint: the zero-findings gate and seeded-violation checks.

The first test IS the CI gate: ``src/repro`` must stay lint-clean.  The
rest seed one violation per rule into synthetic files and assert the lint
catches each — in particular a budget ``.charge()`` call outside the
sanctioned accountant/ledger seam (the acceptance case).
"""

from __future__ import annotations

import importlib.util
import os
import sys
import textwrap

_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
_LINT = os.path.join(_ROOT, "tools", "privacy_lint.py")

spec = importlib.util.spec_from_file_location("privacy_lint", _LINT)
privacy_lint = importlib.util.module_from_spec(spec)
sys.modules["privacy_lint"] = privacy_lint
spec.loader.exec_module(privacy_lint)


def _write(tmp_path, relpath: str, source: str) -> str:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return str(path)


def _codes(findings):
    return [f.code for f in findings]


def test_src_repro_is_lint_clean():
    findings = privacy_lint.lint_paths([os.path.join(_ROOT, "src", "repro")])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_out_of_seam_charge_is_caught(tmp_path):
    """A budget spend smuggled outside the accountant/ledger seam."""
    path = _write(
        tmp_path,
        "repro/plan/rogue.py",
        """
        def sneak(accountant):
            accountant.charge(1.0)
        """,
    )
    findings = privacy_lint.lint_paths([path])
    assert _codes(findings) == ["PL001"]
    assert findings[0].line == 3  # the dedented source keeps its leading newline


def test_out_of_seam_spend_is_caught(tmp_path):
    path = _write(
        tmp_path,
        "repro/api/rogue.py",
        """
        def sneak(session):
            session.accountant.spend(0.5, label="x")
        """,
    )
    assert _codes(privacy_lint.lint_paths([path])) == ["PL001"]


def test_sanctioned_charge_sites_are_exempt(tmp_path):
    source = """
    def ok(self, amount):
        self.store.charge(amount)
    """
    for seam in ("repro/core/composition.py", "repro/api/ledger.py"):
        path = _write(tmp_path, seam, source)
        assert privacy_lint.lint_paths([path]) == []


def test_raw_randomness_is_caught(tmp_path):
    path = _write(
        tmp_path,
        "repro/mechanisms/rogue.py",
        """
        import random
        import numpy as np

        def noisy():
            return np.random.normal(0.0, 1.0) + random.random()
        """,
    )
    codes = _codes(privacy_lint.lint_paths([path]))
    assert codes.count("PL002") == 2  # the import and the np.random draw
    assert set(codes) == {"PL002"}


def test_seed_plumbing_is_allowed(tmp_path):
    path = _write(
        tmp_path,
        "repro/mechanisms/fine.py",
        """
        import numpy as np

        def draw(rng: np.random.Generator | None):
            rng = rng or np.random.default_rng(7)
            return rng.normal(0.0, 1.0)
        """,
    )
    assert privacy_lint.lint_paths([path]) == []


def test_rng_seam_module_is_exempt(tmp_path):
    path = _write(
        tmp_path,
        "repro/core/rng.py",
        """
        import numpy as np

        def fresh():
            return np.random.default_rng()
        """,
    )
    assert privacy_lint.lint_paths([path]) == []


def test_lock_under_leaf_lock_is_caught(tmp_path):
    path = _write(
        tmp_path,
        "repro/api/rogue_locks.py",
        """
        def bad(self, key):
            with self._stripes.lock_for(key):
                with self._lock:
                    pass
        """,
    )
    findings = privacy_lint.lint_paths([path])
    assert _codes(findings) == ["PL003"]


def test_datasets_lock_is_a_leaf(tmp_path):
    path = _write(
        tmp_path,
        "repro/api/rogue_locks2.py",
        """
        def bad(self, key):
            with self._datasets_lock:
                with self._stripes.lock_for(key):
                    pass
        """,
    )
    assert _codes(privacy_lint.lint_paths([path])) == ["PL003"]


def test_sequential_leaf_locks_are_fine(tmp_path):
    path = _write(
        tmp_path,
        "repro/api/fine_locks.py",
        """
        def ok(self, keys):
            for key in keys:
                with self._stripes.lock_for(key):
                    pass
            with self._datasets_lock:
                pass
        """,
    )
    assert privacy_lint.lint_paths([path]) == []


def test_lock_then_leaf_is_fine(tmp_path):
    # the sanctioned order: coarse session lock first, leaf innermost
    path = _write(
        tmp_path,
        "repro/api/fine_locks2.py",
        """
        def ok(self, key):
            with self._lock:
                with self._stripes.lock_for(key):
                    pass
        """,
    )
    assert privacy_lint.lint_paths([path]) == []


def test_core_importing_api_is_caught(tmp_path):
    path = _write(
        tmp_path,
        "repro/core/rogue_import.py",
        "from repro.api import BlowfishService\n",
    )
    assert _codes(privacy_lint.lint_paths([path])) == ["PL004"]


def test_relative_api_import_is_caught(tmp_path):
    path = _write(
        tmp_path,
        "repro/engine/rogue_import.py",
        "from ..api import ledger\n",
    )
    assert _codes(privacy_lint.lint_paths([path])) == ["PL004"]


def test_core_importing_plan_is_caught(tmp_path):
    path = _write(
        tmp_path,
        "repro/core/rogue_layer.py",
        "from repro.plan import Workload\n",
    )
    assert _codes(privacy_lint.lint_paths([path])) == ["PL004"]


def test_api_may_import_anything_repro(tmp_path):
    path = _write(
        tmp_path,
        "repro/api/fine_import.py",
        "from ..core.policy import Policy\nfrom ..plan import Workload\n",
    )
    assert privacy_lint.lint_paths([path]) == []


def test_net_importing_algebra_is_caught(tmp_path):
    # the HTTP front end may never reach around the service boundary
    path = _write(
        tmp_path,
        "repro/net/rogue_import.py",
        "from repro.engine import PolicyEngine\n",
    )
    findings = privacy_lint.lint_paths([path])
    assert _codes(findings) == ["PL004"]
    assert "BlowfishService.handle" in findings[0].message


def test_net_relative_core_import_is_caught(tmp_path):
    path = _write(
        tmp_path,
        "repro/net/rogue_relative.py",
        "from ..core.policy import Policy\n",
    )
    assert _codes(privacy_lint.lint_paths([path])) == ["PL004"]


def test_net_may_import_api_and_obs(tmp_path):
    path = _write(
        tmp_path,
        "repro/net/fine_import.py",
        "from ..api import BlowfishService\n"
        "from .. import obs\n"
        "from .server import run_server\n",
    )
    assert privacy_lint.lint_paths([path]) == []


def test_obs_purity_is_enforced(tmp_path):
    path = _write(
        tmp_path,
        "repro/obs/rogue.py",
        "import numpy as np\nfrom repro.core import domain\n",
    )
    assert sorted(_codes(privacy_lint.lint_paths([path]))) == ["PL005", "PL005"]


def test_cli_exit_codes(tmp_path, capsys):
    clean = _write(tmp_path, "repro/plan/clean.py", "X = 1\n")
    assert privacy_lint.main([clean]) == 0
    assert "0 finding(s)" in capsys.readouterr().out
    rogue = _write(
        tmp_path, "repro/plan/rogue_cli.py", "def f(a):\n    a.spend(1.0)\n"
    )
    assert privacy_lint.main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "PL001" in out


def test_cli_json_output(tmp_path, capsys):
    rogue = _write(tmp_path, "repro/plan/rogue_json.py", "import random\n")
    assert privacy_lint.main(["--json", rogue]) == 1
    import json

    findings = json.loads(capsys.readouterr().out)
    assert findings[0]["code"] == "PL002"
    assert findings[0]["line"] == 1
