"""Budget-first planning: allocation, degradation, executor charging."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    Database,
    Domain,
    PlanBudget,
    Policy,
    PolicyEngine,
    Workload,
)
from repro.api import Session
from repro.core.composition import BudgetExceededError, PrivacyAccountant
from repro.plan import Executor, Plan, QueryGroup

SIZE = 256


@pytest.fixture
def domain():
    return Domain.integers("v", SIZE)


@pytest.fixture
def db(domain):
    rng = np.random.default_rng(7)
    return Database.from_indices(domain, rng.integers(0, SIZE, 4_000))


def _mixed_workload(domain, db, *, linear_optional=False):
    masks = np.zeros((2, SIZE), dtype=bool)
    masks[0, 10:40] = True
    masks[1, 100:130] = True
    return Workload(
        domain,
        [
            QueryGroup.ranges([0, 10, 50], [99, 20, 255]),
            QueryGroup.counts(masks),
            QueryGroup.linear(
                np.ones((1, db.n)) / db.n, optional=linear_optional
            ),
        ],
    )


class TestPlanBudget:
    def test_exactly_one_of_total_or_uniform(self):
        with pytest.raises(ValueError, match="exactly one"):
            PlanBudget()
        with pytest.raises(ValueError, match="exactly one"):
            PlanBudget(total=1.0, uniform=0.5)
        with pytest.raises(ValueError, match="positive"):
            PlanBudget(total=-1.0)
        with pytest.raises(ValueError, match="degradation"):
            PlanBudget(total=1.0, degradation="panic")
        with pytest.raises(ValueError, match="floor"):
            PlanBudget(total=1.0, floors={"range": 0.0})
        # a flat per-release charge cannot honour per-group floors
        with pytest.raises(ValueError, match="floors require a total"):
            PlanBudget(uniform=0.1, floors={"range": 0.5})

    def test_spec_round_trip(self):
        budget = PlanBudget(
            total=1.5, floors={"range": 0.2}, degradation="drop_optional"
        )
        back = PlanBudget.from_spec(json.loads(json.dumps(budget.to_spec())))
        assert back == budget
        assert back.cache_token() == budget.cache_token()
        uniform = PlanBudget(uniform=0.25)
        assert PlanBudget.from_spec(uniform.to_spec()) == uniform
        assert uniform != budget


class TestAdaptiveAllocation:
    def test_allocation_sums_to_total_and_is_positive(self, domain, db):
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        plan = engine.plan(_mixed_workload(domain, db), budget=PlanBudget(total=1.0))
        fresh = [s.epsilon for s in plan.steps if s.epsilon > 0]
        assert all(e > 0 for e in fresh)
        assert plan.total_epsilon == pytest.approx(1.0)

    def test_marginal_errors_equalize_at_the_optimum(self, domain, db):
        # the cube-root rule's first-order condition: every fresh release's
        # |dE/deps| is equal (no floors binding)
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        plan = engine.plan(_mixed_workload(domain, db), budget=PlanBudget(total=1.0))
        marginals = list(plan.marginal_errors().values())
        assert len(marginals) == 2  # shared range release + linear
        assert marginals[0] == pytest.approx(marginals[1], rel=1e-6)

    def test_adaptive_beats_uniform_in_predicted_error(self, domain, db):
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        wl = _mixed_workload(domain, db)

        def predicted_total(plan):
            return sum(
                s.n_queries * s.predicted_rmse**2
                for s in plan.steps
                if s.predicted_rmse is not None
            )

        adaptive = engine.plan(wl, budget=PlanBudget(total=1.0))
        n_fresh = sum(1 for s in adaptive.steps if s.epsilon > 0)
        uniform = engine.plan(wl, budget=PlanBudget(uniform=1.0 / n_fresh))
        assert uniform.total_epsilon == pytest.approx(adaptive.total_epsilon)
        assert predicted_total(adaptive) < predicted_total(uniform)

    def test_floors_are_respected(self, domain, db):
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        wl = _mixed_workload(domain, db)
        # the linear group's weight is tiny, so unfloored it gets a sliver
        sliver = engine.plan(wl, budget=PlanBudget(total=1.0))
        assert sliver.step_for("linear").epsilon < 0.3
        floored = engine.plan(
            wl, budget=PlanBudget(total=1.0, floors={"linear": 0.3})
        )
        assert floored.step_for("linear").epsilon == pytest.approx(0.3)
        assert floored.total_epsilon == pytest.approx(1.0)

    def test_infeasible_floors_raise_before_any_spend(self, domain, db):
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        with pytest.raises(BudgetExceededError):
            engine.plan(
                _mixed_workload(domain, db),
                budget=PlanBudget(total=0.5, floors={"range": 0.4, "linear": 0.4}),
            )

    def test_uniform_special_case_is_bitwise_identical_to_legacy(self, domain, db):
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        wl = _mixed_workload(domain, db)
        for optimize in (True, False):
            legacy = engine.plan(wl, optimize=optimize)
            budgeted = engine.plan(
                wl, optimize=optimize, budget=PlanBudget(uniform=engine.epsilon)
            )
            assert [
                (s.release, s.strategy, s.epsilon) for s in legacy.steps
            ] == [(s.release, s.strategy, s.epsilon) for s in budgeted.steps]
            r1 = Executor(engine).run(legacy, db, rng=np.random.default_rng(3))
            r2 = Executor(engine).run(budgeted, db, rng=np.random.default_rng(3))
            assert np.array_equal(r1.answers, r2.answers)
            assert r1.epsilon_spent == r2.epsilon_spent

    def test_executor_charges_the_allocated_epsilons(self, domain, db):
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        plan = engine.plan(_mixed_workload(domain, db), budget=PlanBudget(total=1.0))
        acct = PrivacyAccountant(engine.policy)
        result = Executor(engine).run(
            plan, db, rng=np.random.default_rng(1), accountant=acct
        )
        assert result.epsilon_spent == pytest.approx(plan.total_epsilon)
        assert acct.sequential_total() == pytest.approx(plan.total_epsilon)
        by_label = dict(acct.spends)
        step = plan.step_for("range")
        assert by_label[step.release] == pytest.approx(step.epsilon)

    def test_allocated_noise_actually_tracks_the_epsilon(self, domain, db):
        # a release allocated most of the budget must be less noisy than
        # the same release under a sliver (the mechanism is truly built at
        # the allocated epsilon, not the engine's)
        engine = PolicyEngine(Policy.line(domain), 0.5)
        wl = Workload.ranges(domain, [0, 20, 64], [200, 90, 255])
        truth = Executor(engine).run(
            engine.plan(wl), db, rng=np.random.default_rng(0)
        )  # warms nothing; just shape reference
        from repro.analysis.error import true_range_answers

        big = engine.plan(wl, budget=PlanBudget(total=4.0))
        small = engine.plan(wl, budget=PlanBudget(total=0.04))
        t = true_range_answers(
            db.cumulative_histogram(),
            np.asarray([0, 20, 64]),
            np.asarray([200, 90, 255]),
        )
        errs = {}
        for name, plan in (("big", big), ("small", small)):
            sq = []
            for trial in range(40):
                res = Executor(engine).run(plan, db, rng=np.random.default_rng(trial))
                sq.append(np.mean((res.answers - t) ** 2))
            errs[name] = float(np.mean(sq))
        assert errs["big"] < errs["small"] / 100
        assert truth.answers.shape == (3,)


class TestDegradation:
    def test_strict_raises_at_planning_time_before_any_spend(self, domain, db):
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        session = Session(engine, db, budget=0.4)
        with pytest.raises(BudgetExceededError):
            session.plan(
                _mixed_workload(domain, db), budget=PlanBudget(total=1.0)
            )
        assert session.accountant.spends == []
        assert session.releases == {}

    def test_drop_optional_sheds_marked_groups_and_fits(self, domain, db):
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        session = Session(engine, db, budget=0.4)
        wl = _mixed_workload(domain, db, linear_optional=True)
        plan = session.plan(
            wl, budget=PlanBudget(total=1.0, degradation="drop_optional")
        )
        step = plan.step_for("linear")
        assert step.degradation == "dropped"
        assert step.epsilon == 0.0
        assert plan.total_epsilon == pytest.approx(0.4)  # clamped to remaining
        answers, meta = session.execute_plan(plan, rng=np.random.default_rng(0))
        assert meta["degraded"] == {"dropped": ["linear"]}
        assert np.isnan(answers[-1])  # the linear query's slot
        assert not np.isnan(answers[:-1]).any()
        assert session.spent == pytest.approx(0.4)

    def test_drop_optional_without_optional_groups_still_raises(self, domain, db):
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        session = Session(engine, db, budget=0.4)
        # nothing optional, uniform charge cannot shrink: degrade has no move
        with pytest.raises(BudgetExceededError):
            session.plan(
                _mixed_workload(domain, db),
                budget=PlanBudget(uniform=0.5, degradation="drop_optional"),
            )

    def test_reuse_stale_serves_from_paid_releases(self, domain, db):
        # theta=2: the auto planner prefers a *fresh* ordered release over
        # the session's stale OH release ("range", the fixed default) — but
        # under a constrained budget, reuse_stale repins onto the stale one
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        session = Session(engine, db, budget=1.0)
        session.answer_ranges([0], [99], rng=np.random.default_rng(0))
        assert session.spent == pytest.approx(0.5)
        wl = _mixed_workload(domain, db)
        unconstrained = session.plan(wl)
        assert unconstrained.step_for("range").release == "range:ordered"
        plan = session.plan(
            wl, budget=PlanBudget(total=1.0, degradation="reuse_stale")
        )
        range_step = plan.step_for("range")
        assert range_step.degradation == "stale"
        assert range_step.release == "range"
        assert range_step.strategy == "ordered-hierarchical"
        assert range_step.epsilon == 0.0
        # the linear group has no stale alternative: it stays fresh, within
        # what is left
        linear_step = plan.step_for("linear")
        assert linear_step.degradation is None
        assert 0 < linear_step.epsilon <= 0.5 + 1e-9
        answers, meta = session.execute_plan(plan, rng=np.random.default_rng(1))
        assert "stale" in meta["degraded"]
        assert not np.isnan(answers).any()
        assert session.spent <= 1.0 + 1e-9

    def test_free_plan_never_degrades_even_in_strict_mode(self, domain, db):
        # every group served from the session's cache: the plan charges 0,
        # so no remaining budget, however small, should trigger degradation
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        session = Session(engine, db, budget=2.0)
        wl = _mixed_workload(domain, db)
        first = session.plan(wl, budget=PlanBudget(total=1.9))
        session.execute_plan(first, rng=np.random.default_rng(0))
        assert session.remaining() == pytest.approx(0.1)
        free = session.plan(wl, budget=PlanBudget(total=1.0, degradation="strict"))
        assert free.total_epsilon == 0.0
        assert all(s.degradation is None for s in free.steps)
        answers, meta = session.execute_plan(free, rng=np.random.default_rng(1))
        assert meta["epsilon_spent"] == 0.0

    def test_unconstrained_budget_never_degrades(self, domain, db):
        # plenty of remaining budget: degradation mode is irrelevant
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        session = Session(engine, db, budget=10.0)
        plan = session.plan(
            _mixed_workload(domain, db, linear_optional=True),
            budget=PlanBudget(total=1.0, degradation="drop_optional"),
        )
        assert all(s.degradation is None for s in plan.steps)
        assert plan.total_epsilon == pytest.approx(1.0)


class TestRemainingQuantization:
    """``PlanBudget.quantize_remaining``: cacheable identity, safe effective."""

    def test_none_passes_through(self):
        assert PlanBudget(total=1.0).quantize_remaining(None) == (None, None)

    def test_uniform_counts_whole_charges_exactly(self):
        budget = PlanBudget(uniform=0.5)
        assert budget.quantize_remaining(1.6) == (("units", 3), 1.5)
        assert budget.quantize_remaining(0.49) == (("units", 0), 0.0)
        # float dust below a whole multiple still buys the full count
        token, effective = budget.quantize_remaining(1.5 - 1e-12)
        assert token == ("units", 3) and effective == pytest.approx(1.5)

    def test_covering_remainders_are_one_class(self):
        budget = PlanBudget(total=1.0)
        assert budget.quantize_remaining(5.0)[0] == ("fits",)
        assert budget.quantize_remaining(7.0)[0] == ("fits",)
        assert budget.quantize_remaining(1.0)[0] == ("fits",)
        # the effective value is untouched where nothing degrades
        assert budget.quantize_remaining(5.0)[1] == 5.0

    def test_constrained_remainders_bucket_to_the_lower_edge(self):
        budget = PlanBudget(total=1.0)
        token, effective = budget.quantize_remaining(0.4)
        assert token == ("bucket", 25)
        assert effective == pytest.approx(25 / 64)
        # everything in the bucket shares the identity and representative
        assert budget.quantize_remaining(0.399)[0] == token
        assert budget.quantize_remaining(25 / 64)[0] == token

    def test_tiny_remainders_stay_exact(self):
        budget = PlanBudget(total=1.0)
        token, effective = budget.quantize_remaining(0.001)
        assert token == ("exact", 0.001) and effective == 0.001

    def test_effective_never_exceeds_remaining(self):
        budget = PlanBudget(total=1.0)
        rng = np.random.default_rng(0)
        for remaining in rng.uniform(0, 2, 200):
            _token, effective = budget.quantize_remaining(float(remaining))
            assert effective <= remaining + 1e-9


class TestSharedRowAllocation:
    def test_shared_rows_are_charged_to_one_release_in_the_split(self, domain, db):
        # two one-hot linear groups overlapping on two rows: the release
        # compiled first serves the shared rows for both groups, so the
        # error split must weight it by the queries it *answers* (6) and
        # the second by its fresh-only remainder (2) — not 4:4
        a = np.zeros((4, db.n))
        a[np.arange(4), np.arange(4)] = 1.0
        b = np.zeros((4, db.n))
        b[np.arange(4), np.arange(2, 6)] = 1.0
        wl = Workload(
            domain,
            [QueryGroup.linear(a, name="a"), QueryGroup.linear(b, name="b")],
        )
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        plan = engine.plan(wl, budget=PlanBudget(total=1.0))
        eps_a = plan.step_for("a").epsilon
        eps_b = plan.step_for("b").epsilon
        assert eps_a + eps_b == pytest.approx(1.0)
        # cube-root rule on 6 vs 2 attributed queries (equal per-query cost)
        assert eps_a / eps_b == pytest.approx(3.0 ** (1 / 3), rel=1e-6)

    def test_disjoint_groups_split_evenly(self, domain, db):
        # control: no overlap, equal sizes -> the old and new weighting agree
        a = np.zeros((4, db.n))
        a[np.arange(4), np.arange(4)] = 1.0
        b = np.zeros((4, db.n))
        b[np.arange(4), np.arange(10, 14)] = 1.0
        wl = Workload(
            domain,
            [QueryGroup.linear(a, name="a"), QueryGroup.linear(b, name="b")],
        )
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        plan = engine.plan(wl, budget=PlanBudget(total=1.0))
        assert plan.step_for("a").epsilon == pytest.approx(
            plan.step_for("b").epsilon
        )


class TestBudgetedPlanSpecs:
    def test_round_trip_preserves_budget_and_degradation(self, domain, db):
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        wl = _mixed_workload(domain, db, linear_optional=True)
        plan = Planner_plan = engine.plan(
            wl,
            budget=PlanBudget(total=1.0, degradation="drop_optional"),
            remaining=0.4,
        )
        back = Plan.from_spec(json.loads(json.dumps(plan.to_spec())), domain)
        assert back.fingerprint() == plan.fingerprint()
        assert back.budget == plan.budget
        assert [s.degradation for s in back.steps] == [
            s.degradation for s in Planner_plan.steps
        ]
        # a round-tripped degraded plan executes identically
        r1 = Executor(engine).run(plan, db, rng=np.random.default_rng(5))
        r2 = Executor(engine).run(back, db, rng=np.random.default_rng(5))
        assert np.array_equal(r1.answers, r2.answers, equal_nan=True)

    def test_explain_reports_budget_and_marginals(self, domain, db):
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        report = engine.plan(
            _mixed_workload(domain, db), budget=PlanBudget(total=1.0)
        ).explain()
        for needle in ("budget:", "marginal error per epsilon", "cost model:"):
            assert needle in report, report

    def test_switching_calibration_fits_keys_out_cached_plans(self, domain, db):
        from repro.analysis.bounds import set_active_calibration
        from repro.api import EnginePool

        pool = EnginePool()
        engine = pool.get(Policy.distance_threshold(domain, 2), 0.5)
        wl = _mixed_workload(domain, db)
        plan1, outcome1 = engine.plan_with_meta(wl)
        assert outcome1 == "miss"
        assert plan1.cost_model == "synthetic-grid"
        assert engine.plan_with_meta(wl)[1] == "hit"
        previous = set_active_calibration("uniform")
        try:
            plan2, outcome2 = engine.plan_with_meta(wl)
            # a different fit scored this one: never served from the cache
            assert outcome2 == "miss"
            assert plan2.cost_model == "uniform"
            # the stamped plan reports the fit it was scored under, even
            # though the active fit has moved on
            assert "cost model: synthetic-grid" in plan1.explain()
            assert "cost model: uniform" in plan2.explain()
        finally:
            set_active_calibration(previous)

    def test_optional_flag_survives_workload_specs(self, domain, db):
        wl = _mixed_workload(domain, db, linear_optional=True)
        back = Workload.from_spec(json.loads(json.dumps(wl.to_spec())), domain)
        assert [g.optional for g in back.groups] == [False, False, True]
        assert back.fingerprint() == wl.fingerprint()
        # required-only workloads keep their pre-budget spec form
        plain = _mixed_workload(domain, db)
        assert "optional" not in json.dumps(plain.to_spec())
