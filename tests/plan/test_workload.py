"""Workload grouping, validation and spec round-tripping."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    CountQuery,
    Domain,
    HistogramQuery,
    LinearQuery,
    RangeQuery,
    Workload,
)
from repro.core.specbase import SpecError
from repro.plan import QueryGroup


@pytest.fixture
def domain():
    return Domain.integers("v", 64)


class TestGrouping:
    def test_from_queries_groups_by_family_and_keeps_positions(self, domain):
        queries = [
            CountQuery.from_mask(domain, np.arange(64) < 10),
            RangeQuery(domain, 3, 9),
            LinearQuery(domain, np.ones(5)),
            RangeQuery(domain, 0, 63),
        ]
        wl = Workload.from_queries(domain, queries)
        assert [g.family for g in wl.groups] == ["range", "count", "linear"]
        assert len(wl) == 4
        flat = wl.assemble(
            {"range": np.array([1.0, 2.0]), "count": np.array([3.0]), "linear": np.array([4.0])}
        )
        # input order restored: count, range, linear, range
        assert flat.tolist() == [3.0, 1.0, 4.0, 2.0]

    def test_vector_valued_queries_are_rejected(self, domain):
        with pytest.raises(TypeError, match="vector-valued"):
            Workload.from_queries(domain, [HistogramQuery(domain)])

    def test_unknown_query_type_is_rejected(self, domain):
        with pytest.raises(TypeError, match="unsupported query type"):
            Workload.from_queries(domain, ["nope"])

    def test_duplicate_group_names_are_rejected(self, domain):
        with pytest.raises(ValueError, match="unique"):
            Workload(domain, [QueryGroup.ranges([0], [1]), QueryGroup.ranges([2], [3])])

    def test_two_groups_of_one_family_are_allowed(self, domain):
        wl = Workload(
            domain,
            [QueryGroup.ranges([0], [1], name="a"), QueryGroup.ranges([2], [3], name="b")],
        )
        assert len(wl) == 2 and {g.name for g in wl} == {"a", "b"}

    def test_out_of_range_queries_are_rejected(self, domain):
        with pytest.raises(SpecError, match="invalid range"):
            Workload.ranges(domain, [0], [64])

    def test_mask_width_is_validated(self, domain):
        with pytest.raises(SpecError, match="mask width"):
            Workload(domain, [QueryGroup.counts(np.zeros((1, 65), dtype=bool))])

    def test_higher_dimensional_payloads_are_rejected(self, domain):
        with pytest.raises(ValueError, match="2-D"):
            QueryGroup.linear(np.ones((2, 3, 5)))
        with pytest.raises(ValueError, match="2-D"):
            QueryGroup.counts(np.zeros((2, 3, 64), dtype=bool))


class TestStatistics:
    def test_avg_support_and_runs(self, domain):
        masks = np.zeros((2, 64), dtype=bool)
        masks[0, 10:20] = True  # 10 cells, 1 run
        masks[1, ::2] = True  # 32 cells, 32 runs
        g = QueryGroup.counts(masks)
        assert g.avg_support() == pytest.approx(21.0)
        assert g.avg_runs() == pytest.approx(16.5)

    def test_run_starting_at_zero_counts_once(self, domain):
        masks = np.zeros((1, 64), dtype=bool)
        masks[0, 0:5] = True
        assert QueryGroup.counts(masks).avg_runs() == pytest.approx(1.0)


class TestSpecs:
    def _mixed(self, domain):
        masks = np.zeros((2, 64), dtype=bool)
        masks[0, 4:9] = True
        masks[1, 60:] = True
        return Workload(
            domain,
            [
                QueryGroup.ranges([0, 5], [9, 63]),
                QueryGroup.counts(masks, name="bands"),
                QueryGroup.linear(np.linspace(0, 1, 12).reshape(2, 6), name="w"),
            ],
        )

    def test_round_trip_preserves_fingerprint_and_payload(self, domain):
        wl = self._mixed(domain)
        spec = json.loads(json.dumps(wl.to_spec()))
        back = Workload.from_spec(spec, domain)
        assert back.fingerprint() == wl.fingerprint()
        assert [g.name for g in back.groups] == [g.name for g in wl.groups]
        assert np.array_equal(back.group("bands").masks, wl.group("bands").masks)
        assert np.array_equal(back.group("w").weights, wl.group("w").weights)
        assert np.array_equal(back.group("range").los, wl.group("range").los)

    def test_bad_support_index_is_named(self, domain):
        spec = {
            "kind": "workload",
            "groups": [{"name": "c", "family": "count", "supports": [[99]]}],
        }
        with pytest.raises(SpecError, match=r"supports\[0\]"):
            Workload.from_spec(spec, domain)

    def test_unknown_family_is_named(self, domain):
        spec = {"kind": "workload", "groups": [{"name": "x", "family": "quantile"}]}
        with pytest.raises(SpecError, match="family"):
            Workload.from_spec(spec, domain)


class TestCacheToken:
    """The fast structural digest behind the cross-tenant plan cache."""

    def test_equal_workloads_share_a_token(self):
        domain = Domain.integers("v", 64)
        a = Workload.ranges(domain, [0, 5], [9, 63])
        b = Workload.ranges(domain, np.array([0, 5]), np.array([9, 63]))
        assert a.cache_token() == b.cache_token()

    def test_shape_is_part_of_the_token(self):
        # same flattened bytes, different query structure: a cache
        # collision here would hand one tenant another tenant's plan
        domain = Domain.integers("v", 6)
        flat = np.linspace(0, 1, 12)
        a = Workload(domain, [QueryGroup.linear(flat.reshape(2, 6), name="w")])
        b = Workload(domain, [QueryGroup.linear(flat.reshape(3, 4), name="w")])
        assert a.cache_token() != b.cache_token()

    def test_packbits_padding_cannot_collide(self):
        # an all-zero trailing mask row disappears into packbits padding;
        # the shape prefix must keep the workloads distinct
        domain = Domain.integers("v", 4)
        one = np.array([[True, False, True, False]])
        two = np.vstack([one, np.zeros((1, 4), dtype=bool)])
        a = Workload(domain, [QueryGroup.counts(one)])
        b = Workload(domain, [QueryGroup.counts(two)])
        assert a.cache_token() != b.cache_token()

    def test_domain_and_positions_are_part_of_the_token(self):
        d1, d2 = Domain.integers("v", 64), Domain.integers("w", 64)
        assert (
            Workload.ranges(d1, [0], [9]).cache_token()
            != Workload.ranges(d2, [0], [9]).cache_token()
        )
        q = [RangeQuery(d1, 0, 9), CountQuery.from_mask(d1, np.arange(64) < 5)]
        ordered = Workload.from_queries(d1, q)
        swapped = Workload.from_queries(d1, q[::-1])
        assert ordered.cache_token() != swapped.cache_token()
