"""Planner optimality on the Figure 2 policy/workload grid.

The contract: under a fixed seed, the planner's predicted-best mechanism is
never worse (measured range-query MSE) than the registry's fixed per-family
strategy by more than the cost model's stated tolerance
(``repro.analysis.bounds.MODEL_TOLERANCE``) — and where the planner
deviates from the fixed dispatch at all, it must be because the deviation
measurably helps somewhere on the grid.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, Domain, Policy, PolicyEngine, Workload
from repro.analysis.bounds import MODEL_TOLERANCE
from repro.analysis.error import random_range_queries, true_range_answers
from repro.plan import Executor

SIZE = 512
N_QUERIES = 600
TRIALS = 8
SEED = 20140623

#: the Figure 2 sweep, shrunk: distance thresholds from the ordered end to
#: the DP end (None = full domain), at a low and a high epsilon
GRID = [
    (theta, eps)
    for theta in (1, 2, 4, 16, 128, None)
    for eps in (0.25, 1.0)
]


@pytest.fixture(scope="module")
def setting():
    domain = Domain.integers("v", SIZE)
    rng = np.random.default_rng(SEED)
    # adult-like sparse draw: mostly one spike band plus a uniform tail
    spike = rng.normal(180, 12, 6_000)
    tail = rng.uniform(0, SIZE, 2_000)
    db = Database.from_indices(
        domain, np.clip(np.concatenate([spike, tail]), 0, SIZE - 1).astype(np.int64)
    )
    los, his = random_range_queries(SIZE, N_QUERIES, rng)
    truth = true_range_answers(db.cumulative_histogram(), los, his)
    return domain, db, Workload.ranges(domain, los, his), truth


def _measured_mse(engine, plan, db, truth) -> float:
    errs = []
    for trial in range(TRIALS):
        result = Executor(engine).run(plan, db, rng=np.random.default_rng((SEED, trial)))
        errs.append(float(np.mean((result.answers - truth) ** 2)))
    return float(np.mean(errs))


@pytest.mark.parametrize("theta,eps", GRID)
def test_planner_never_loses_by_more_than_the_model_tolerance(setting, theta, eps):
    domain, db, workload, truth = setting
    policy = (
        Policy.differential_privacy(domain)
        if theta is None
        else Policy.distance_threshold(domain, theta)
    )
    engine = PolicyEngine(policy, eps)
    fixed = engine.plan(workload, optimize=False)
    auto = engine.plan(workload, optimize=True)
    if auto.step_for("range").strategy == fixed.step_for("range").strategy:
        # identical choice must mean identical (bitwise) answers
        a = Executor(engine).run(auto, db, rng=np.random.default_rng(SEED)).answers
        f = Executor(engine).run(fixed, db, rng=np.random.default_rng(SEED)).answers
        assert np.array_equal(a, f)
        return
    mse_fixed = _measured_mse(engine, fixed, db, truth)
    mse_auto = _measured_mse(engine, auto, db, truth)
    assert mse_auto <= mse_fixed * MODEL_TOLERANCE, (
        f"planner chose {auto.step_for('range').strategy} over "
        f"{fixed.step_for('range').strategy} at theta={theta}, eps={eps} and "
        f"lost: {mse_auto:.1f} vs {mse_fixed:.1f}"
    )


def test_planner_wins_somewhere_on_the_grid(setting):
    """The deviations must pay: at the small-theta end the ordered pick
    should measurably beat the fixed OH dispatch."""
    domain, db, workload, truth = setting
    engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
    fixed = engine.plan(workload, optimize=False)
    auto = engine.plan(workload, optimize=True)
    assert auto.step_for("range").strategy != fixed.step_for("range").strategy
    assert _measured_mse(engine, auto, db, truth) < _measured_mse(engine, fixed, db, truth)
