"""Planner choices, plan structure, executor semantics, engine parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CountQuery,
    Database,
    Domain,
    LinearQuery,
    Policy,
    PolicyEngine,
    RangeQuery,
    Workload,
)
from repro.core.composition import PrivacyAccountant
from repro.plan import Executor, Plan, QueryGroup

SIZE = 256


@pytest.fixture
def domain():
    return Domain.integers("v", SIZE)


@pytest.fixture
def db(domain):
    rng = np.random.default_rng(7)
    return Database.from_indices(domain, rng.integers(0, SIZE, 4_000))


def _mixed_workload(domain, db):
    masks = np.zeros((2, SIZE), dtype=bool)
    masks[0, 10:40] = True
    masks[1, 100:130] = True
    return Workload(
        domain,
        [
            QueryGroup.ranges([0, 10, 50], [99, 20, 255]),
            QueryGroup.counts(masks),
            QueryGroup.linear(np.ones((1, db.n)) / db.n),
        ],
    )


class TestPlannerChoices:
    def test_fixed_mode_compiles_the_registry_dispatch(self, domain):
        engine = PolicyEngine(Policy.distance_threshold(domain, 4), 0.5)
        plan = engine.plan(Workload.ranges(domain, [0], [10]), optimize=False)
        assert plan.mode == "fixed"
        step = plan.step_for("range")
        assert step.strategy == engine.strategy("range") == "ordered-hierarchical"
        assert step.release == "range"
        assert [name for name, _ in step.scores] == ["ordered-hierarchical"]

    def test_auto_mode_scores_every_candidate(self, domain):
        engine = PolicyEngine(Policy.distance_threshold(domain, 4), 0.5)
        plan = engine.plan(Workload.ranges(domain, [0], [10]))
        names = {name for name, _ in plan.step_for("range").scores}
        assert names == {"ordered", "ordered-hierarchical", "hierarchical"}

    def test_small_theta_prefers_ordered_over_oh(self, domain):
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        plan = engine.plan(Workload.ranges(domain, [0], [10]))
        step = plan.step_for("range")
        assert step.strategy == "ordered"
        assert step.release == "range:ordered"

    def test_full_domain_keeps_the_dp_baseline(self, domain):
        engine = PolicyEngine(Policy.differential_privacy(domain), 0.5)
        plan = engine.plan(Workload.ranges(domain, [0], [10]))
        assert plan.step_for("range").strategy == "hierarchical"

    def test_interval_counts_share_the_range_release(self, domain, db):
        engine = PolicyEngine(Policy.line(domain), 0.5)
        plan = engine.plan(_mixed_workload(domain, db))
        range_step, count_step = plan.step_for("range"), plan.step_for("count")
        assert count_step.release == range_step.release
        assert count_step.release_family == "range"
        assert count_step.epsilon == 0.0
        # one fresh range release + one linear release
        assert plan.total_epsilon == pytest.approx(1.0)

    def test_scattered_counts_get_their_own_histogram(self, domain, db):
        masks = np.zeros((1, SIZE), dtype=bool)
        masks[0, ::2] = True  # 128 runs: reusing a noisy OH prefix loses
        wl = Workload(
            domain, [QueryGroup.ranges([0], [99]), QueryGroup.counts(masks)]
        )
        plan = PolicyEngine(Policy.distance_threshold(domain, 16), 0.5).plan(wl)
        step = plan.step_for("count")
        assert step.release_family == "histogram"
        assert step.strategy == "laplace-histogram"

    def test_raw_hierarchical_release_is_never_reused_for_counts(self, domain):
        # a consistent=False hierarchical release answers from raw tree
        # leaves whose noise does NOT telescope; the run-based reuse model
        # would be wrong, so the candidate must not be offered at all
        masks = np.zeros((1, SIZE), dtype=bool)
        masks[0, 10:200] = True  # one fat run: reuse would look like a steal
        wl = Workload(domain, [QueryGroup.ranges([0], [99]), QueryGroup.counts(masks)])
        engine = PolicyEngine(
            Policy.differential_privacy(domain),
            0.5,
            options={"range": {"consistent": False}},
        )
        plan = engine.plan(wl)
        step = plan.step_for("count")
        assert step.release_family == "histogram"
        assert not any(name.startswith("reuse:") for name, _ in step.scores)
        # with inference back on, the prefix argument holds and reuse returns
        consistent = PolicyEngine(Policy.differential_privacy(domain), 0.5).plan(wl)
        assert any(
            name.startswith("reuse:") for name, _ in consistent.step_for("count").scores
        )

    def test_reuse_is_group_order_independent(self, domain, db):
        # a count group listed before the range group must still ride the
        # range release (reuse planning is not first-come-first-served)
        masks = np.zeros((1, SIZE), dtype=bool)
        masks[0, 30:60] = True
        engine = PolicyEngine(Policy.line(domain), 0.5)
        count_first = Workload(
            domain, [QueryGroup.counts(masks), QueryGroup.ranges([0], [99])]
        )
        range_first = Workload(
            domain, [QueryGroup.ranges([0], [99]), QueryGroup.counts(masks)]
        )
        p1, p2 = engine.plan(count_first), engine.plan(range_first)
        assert p1.step_for("count").release == p1.step_for("range").release
        assert p1.total_epsilon == p2.total_epsilon == pytest.approx(0.5)
        # and the executor can run the count step first, creating the
        # shared release itself
        res = Executor(engine).run(p1, db, rng=0)
        assert res.epsilon_spent == pytest.approx(0.5)

    def test_warm_session_linear_prediction_is_row_aware(self, domain, db):
        from repro.api import Session

        engine = PolicyEngine(Policy.line(domain), 0.5)
        session = Session(engine, db)
        w1 = np.ones((1, db.n))
        session.execute_plan(session.plan(Workload(domain, [QueryGroup.linear(w1)])), rng=0)
        # same rows: predicted free; genuinely new rows: predicted charge
        same = session.plan(Workload(domain, [QueryGroup.linear(w1)]))
        assert same.step_for("linear").epsilon == 0.0
        other = session.plan(Workload(domain, [QueryGroup.linear(np.full((1, db.n), 3.0))]))
        assert other.step_for("linear").epsilon == pytest.approx(0.5)
        assert other.total_epsilon == pytest.approx(0.5)

    def test_session_cache_makes_reuse_free(self, domain):
        engine = PolicyEngine(Policy.line(domain), 0.5)
        wl = Workload.ranges(domain, [0], [10])
        plan = engine.plan(wl, existing={"range"})
        assert plan.step_for("range").epsilon == 0.0
        assert plan.total_epsilon == 0.0

    def test_explain_names_mechanism_error_and_epsilon(self, domain, db):
        engine = PolicyEngine(Policy.distance_threshold(domain, 2), 0.5)
        report = engine.plan(_mixed_workload(domain, db)).explain()
        for needle in ("ordered", "predicted RMSE", "epsilon 0.5", "candidates:", "total epsilon"):
            assert needle in report, report

    def test_workload_domain_mismatch_is_rejected(self, domain):
        other = Domain.integers("v", 8)
        engine = PolicyEngine(Policy.line(domain), 0.5)
        with pytest.raises(ValueError, match="different domain"):
            engine.plan(Workload.ranges(other, [0], [1]))


class TestExecutor:
    def test_executor_rejects_foreign_plans(self, domain, db):
        e1 = PolicyEngine(Policy.line(domain), 0.5)
        e2 = PolicyEngine(Policy.differential_privacy(domain), 0.5)
        plan = e1.plan(Workload.ranges(domain, [0], [10]))
        with pytest.raises(ValueError, match="different policy"):
            Executor(e2).run(plan, db, rng=0)
        e3 = PolicyEngine(Policy.line(domain), 0.9)
        with pytest.raises(ValueError, match="epsilon"):
            Executor(e3).run(plan, db, rng=0)

    def test_executor_rejects_mismatched_options(self, domain, db):
        # a plan scored under consistent=True must not run on a raw-release
        # engine: the released structures differ from what was scored
        scored = PolicyEngine(Policy.line(domain), 0.5)
        plan = scored.plan(Workload.ranges(domain, [0], [10]))
        raw = PolicyEngine(
            Policy.line(domain), 0.5, options={"range": {"consistent": False}}
        )
        with pytest.raises(ValueError, match="options"):
            Executor(raw).run(plan, db, rng=0)
        # ...and the options survive the spec round trip
        import json

        from repro.plan import Plan

        back = Plan.from_spec(
            json.loads(json.dumps(raw.plan(Workload.ranges(domain, [0], [10])).to_spec())),
            domain,
        )
        assert back.options == {"range": {"consistent": False}}
        Executor(raw).run(back, db, rng=0)  # matching engine: fine

    def test_shared_release_spends_once_and_is_deterministic(self, domain, db):
        engine = PolicyEngine(Policy.line(domain), 0.5)
        wl = _mixed_workload(domain, db)
        plan = engine.plan(wl)
        acct = PrivacyAccountant(engine.policy)
        res = Executor(engine).run(plan, db, rng=np.random.default_rng(3), accountant=acct)
        # range release shared with counts; linear release separate
        assert res.epsilon_spent == pytest.approx(1.0)
        assert acct.sequential_total() == pytest.approx(1.0)
        res2 = Executor(engine).run(plan, db, rng=np.random.default_rng(3))
        assert np.array_equal(res.answers, res2.answers)

    def test_releases_dict_reused_across_runs(self, domain, db):
        engine = PolicyEngine(Policy.line(domain), 0.5)
        plan = engine.plan(Workload.ranges(domain, [5], [50]))
        releases: dict = {}
        r1 = Executor(engine).run(plan, db, rng=0, releases=releases)
        assert set(r1.release_cache.values()) == {"miss"}
        r2 = Executor(engine).run(plan, rng=1, releases=releases)  # no db needed
        assert r2.epsilon_spent == 0.0
        assert np.array_equal(r1.answers, r2.answers)

    def test_missing_db_raises_like_the_engine(self, domain):
        engine = PolicyEngine(Policy.line(domain), 0.5)
        plan = engine.plan(Workload.ranges(domain, [0], [10]))
        with pytest.raises(ValueError, match="database is required"):
            Executor(engine).run(plan, rng=0)

    def test_epsilon_spent_counts_only_this_runs_releases(self, domain, db):
        # pooled engines are shared: another session's spends on the same
        # engine must not leak into this run's reported total
        engine = PolicyEngine(Policy.line(domain), 0.5)
        plan = engine.plan(Workload.ranges(domain, [0], [40]))
        releases: dict = {}
        first = Executor(engine).run(plan, db, rng=0, releases=releases)
        assert first.epsilon_spent == pytest.approx(0.5)
        engine.release(db, "range", rng=1)  # someone else's release
        second = Executor(engine).run(plan, db, rng=2, releases=releases)
        assert second.epsilon_spent == 0.0

    def test_multi_linear_group_plan_predicts_every_sub_batch_charge(self, domain, db):
        # disjoint linear groups share the 'linear' key but each fresh
        # sub-batch costs epsilon; total_epsilon and explain() must say so
        wl = Workload(
            domain,
            [
                QueryGroup.linear(np.ones((1, db.n)), name="a"),
                QueryGroup.linear(np.full((1, db.n), 2.0), name="b"),
            ],
        )
        engine = PolicyEngine(Policy.line(domain), 0.5)
        plan = engine.plan(wl)
        assert plan.total_epsilon == pytest.approx(1.0)
        assert plan.explain().count("fresh, epsilon 0.5") == 2
        res = Executor(engine).run(plan, db, rng=0)
        assert res.epsilon_spent == pytest.approx(plan.total_epsilon)
        # identical rows across groups: only the first sub-batch pays
        dup = engine.plan(
            Workload(
                domain,
                [
                    QueryGroup.linear(np.ones((1, db.n)), name="a"),
                    QueryGroup.linear(np.ones((1, db.n)), name="b"),
                ],
            )
        )
        assert dup.total_epsilon == pytest.approx(0.5)
        # fixed mode has no row statistics: it must predict conservatively
        # (one charge per linear group), never below the executor's actuals
        fixed = engine.plan(wl, optimize=False)
        assert fixed.total_epsilon == pytest.approx(1.0)
        assert Executor(engine).run(fixed, db, rng=1).epsilon_spent <= fixed.total_epsilon

    def test_linear_release_cache_says_miss_when_rows_are_fresh(self, domain, db):
        engine = PolicyEngine(Policy.line(domain), 0.5)
        releases: dict = {}
        plan_a = engine.plan(Workload(domain, [QueryGroup.linear(np.ones((1, db.n)))]))
        r1 = Executor(engine).run(plan_a, db, rng=0, releases=releases)
        assert r1.release_cache == {"linear": "miss"}
        r2 = Executor(engine).run(plan_a, db, rng=1, releases=releases)
        assert r2.release_cache == {"linear": "hit"}
        # cached key, but a new row: spent epsilon, so it is a miss
        plan_b = engine.plan(Workload(domain, [QueryGroup.linear(np.full((1, db.n), 5.0))]))
        r3 = Executor(engine).run(plan_b, db, rng=2, releases=releases)
        assert r3.release_cache == {"linear": "miss"}
        assert r3.epsilon_spent == pytest.approx(0.5)

    def test_linear_partial_row_reuse_still_reports_the_spend(self, domain, db):
        engine = PolicyEngine(Policy.line(domain), 0.5)
        releases: dict = {}
        wl1 = Workload(domain, [QueryGroup.linear(np.ones((1, db.n)))])
        plan1 = engine.plan(wl1)
        assert Executor(engine).run(plan1, db, rng=0, releases=releases).epsilon_spent == 0.5
        # same rows again: free
        assert Executor(engine).run(plan1, db, rng=1, releases=releases).epsilon_spent == 0.0
        # one old row + one new row: the fresh sub-batch costs epsilon
        wl2 = Workload(
            domain, [QueryGroup.linear(np.vstack([np.ones(db.n), np.full(db.n, 2.0)]))]
        )
        plan2 = engine.plan(wl2)
        assert Executor(engine).run(plan2, db, rng=2, releases=releases).epsilon_spent == 0.5

    def test_shared_counts_match_manual_post_processing(self, domain, db):
        engine = PolicyEngine(Policy.line(domain), 0.5)
        wl = _mixed_workload(domain, db)
        plan = engine.plan(wl)
        releases: dict = {}
        res = Executor(engine).run(plan, db, rng=np.random.default_rng(11), releases=releases)
        rel = releases[plan.step_for("count").release]
        masks = wl.group("count").masks
        expected = masks.astype(np.float64) @ np.asarray(rel.histogram())
        assert np.array_equal(res.by_group["count"], expected)


class TestEngineShims:
    """PolicyEngine.answer rides the plan pipeline bitwise-unchanged."""

    def test_answer_matches_hand_built_plan(self, domain, db):
        engine = PolicyEngine(Policy.distance_threshold(domain, 4), 0.5)
        queries = [
            RangeQuery(domain, 3, 17),
            CountQuery.from_mask(domain, np.arange(SIZE) < 13),
            LinearQuery(domain, np.full(db.n, 0.5)),
            RangeQuery(domain, 0, 200),
        ]
        direct = engine.answer(queries, db, rng=np.random.default_rng(5))
        plan = engine.plan(engine.workload(queries), optimize=False)
        res = engine.execute(plan, db, rng=np.random.default_rng(5))
        assert np.array_equal(direct, res.answers)

    def test_fixed_plan_reproduces_released_mechanism_stream(self, domain, db):
        # same guarantee the engine tests assert, via the executor path
        from repro.mechanisms.ordered import OrderedMechanism

        engine = PolicyEngine(Policy.line(domain), 0.5)
        plan = engine.plan(Workload.ranges(domain, [2, 0], [9, 30]), optimize=False)
        got = Executor(engine).run(plan, db, rng=np.random.default_rng(123)).answers
        rel = OrderedMechanism(Policy.line(domain), 0.5).release(
            db, rng=np.random.default_rng(123)
        )
        assert np.array_equal(got, [rel.range(2, 9), rel.range(0, 30)])
