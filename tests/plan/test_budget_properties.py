"""Property tests: budget-first allocation invariants (hypothesis-driven).

The allocator's contract, over arbitrary workload shapes, budgets and
floors:

* every fresh release's allocated epsilon is strictly positive;
* the allocations sum to at most the budget's total (exactly, up to
  floating point, when nothing degrades);
* budgeted plans survive ``to_spec`` -> JSON -> ``from_spec`` with their
  fingerprints (and therefore their cross-tenant cache identity) intact;
* ``strict`` degradation raises :class:`BudgetExceededError` at planning
  time, before any spend lands on the session ledger.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Database,
    Domain,
    PlanBudget,
    Policy,
    PolicyEngine,
    Workload,
)
from repro.api import Session
from repro.core.composition import BudgetExceededError
from repro.plan import Plan, QueryGroup

SIZE = 64
DOMAIN = Domain.integers("v", SIZE)
DB = Database.from_indices(
    DOMAIN, np.random.default_rng(11).integers(0, SIZE, 500)
)

# -- strategies -------------------------------------------------------------------

_ranges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=SIZE - 1),
        st.integers(min_value=0, max_value=SIZE - 1),
    ),
    min_size=1,
    max_size=6,
)

_supports = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=SIZE - 1), min_size=1, max_size=8, unique=True
    ),
    min_size=1,
    max_size=3,
)


@st.composite
def _workloads(draw):
    groups = []
    pairs = draw(_ranges)
    los = [min(a, b) for a, b in pairs]
    his = [max(a, b) for a, b in pairs]
    groups.append(QueryGroup.ranges(los, his, optional=draw(st.booleans())))
    if draw(st.booleans()):
        masks = np.zeros((0, SIZE), dtype=bool)
        supports = draw(_supports)
        masks = np.zeros((len(supports), SIZE), dtype=bool)
        for i, sup in enumerate(supports):
            masks[i, sup] = True
        groups.append(QueryGroup.counts(masks, optional=draw(st.booleans())))
    if draw(st.booleans()):
        q = draw(st.integers(min_value=1, max_value=2))
        weights = np.arange(1, q * DB.n + 1, dtype=np.float64).reshape(q, DB.n) / DB.n
        groups.append(QueryGroup.linear(weights, optional=draw(st.booleans())))
    return Workload(DOMAIN, groups)


@st.composite
def _budgets(draw):
    total = draw(
        st.floats(min_value=0.1, max_value=4.0, allow_nan=False, allow_infinity=False)
    )
    floors = {}
    if draw(st.booleans()):
        # a floor well under total/3 stays feasible for any unit count here
        floors["range"] = draw(st.floats(min_value=0.01, max_value=total / 4))
    degradation = draw(st.sampled_from(("strict", "drop_optional", "reuse_stale")))
    return PlanBudget(total=total, floors=floors, degradation=degradation)


_engines = st.builds(
    lambda theta, eps: PolicyEngine(
        Policy.distance_threshold(DOMAIN, theta)
        if theta > 0
        else Policy.differential_privacy(DOMAIN),
        eps,
    ),
    st.sampled_from((0, 1, 2, 8)),
    st.sampled_from((0.25, 0.5, 1.0)),
)


# -- properties -------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(workload=_workloads(), budget=_budgets(), engine=_engines)
def test_allocations_are_positive_and_sum_within_total(workload, budget, engine):
    plan = engine.plan(workload, budget=budget)
    fresh = [s.epsilon for s in plan.steps if s.epsilon > 0]
    assert all(e > 0 for e in fresh)
    assert plan.total_epsilon <= budget.total + 1e-9
    # no degradation was triggered (no remaining constraint): the whole
    # budget is put to work whenever anything fresh is released
    if fresh:
        assert plan.total_epsilon == pytest.approx(budget.total)
    # floors bind on the release serving the floored group
    for name, floor in budget.floors.items():
        step = plan.step_for(name)
        charged = max(
            (s.epsilon for s in plan.steps if s.release == step.release),
            default=0.0,
        )
        if step.family != "linear" and charged > 0:
            assert charged >= floor - 1e-9


@settings(max_examples=30, deadline=None)
@given(workload=_workloads(), budget=_budgets(), engine=_engines)
def test_budgeted_plans_round_trip_with_fingerprints_preserved(
    workload, budget, engine
):
    plan = engine.plan(workload, budget=budget)
    back = Plan.from_spec(json.loads(json.dumps(plan.to_spec())), DOMAIN)
    assert back.fingerprint() == plan.fingerprint()
    assert back.budget == plan.budget
    assert [s.epsilon for s in back.steps] == [s.epsilon for s in plan.steps]
    assert back.workload.fingerprint() == plan.workload.fingerprint()


@settings(max_examples=30, deadline=None)
@given(
    workload=_workloads(),
    total=st.floats(min_value=0.5, max_value=4.0, allow_nan=False),
    engine=_engines,
)
def test_strict_mode_raises_before_any_spend(workload, total, engine):
    # session budget strictly below the requested total: strict must refuse
    # at planning time with a pristine ledger
    session = Session(engine, DB, budget=total / 2)
    with pytest.raises(BudgetExceededError):
        session.plan(workload, budget=PlanBudget(total=total, degradation="strict"))
    assert session.accountant.spends == []
    assert session.releases == {}
    assert session.spent == 0.0
