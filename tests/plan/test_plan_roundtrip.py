"""Plan serialization: to_spec()/from_spec() round trips with the
fingerprint preserved, across randomized workloads and policies."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Domain, Policy, PolicyEngine, Workload
from repro.plan import Plan, QueryGroup

SIZE = 48
DOMAIN = Domain.integers("v", SIZE)


@st.composite
def workloads(draw):
    groups = []
    # always at least one range group
    n = draw(st.integers(1, 5))
    los = [draw(st.integers(0, SIZE - 1)) for _ in range(n)]
    his = [draw(st.integers(lo, SIZE - 1)) for lo in los]
    groups.append(QueryGroup.ranges(los, his))
    if draw(st.booleans()):
        n = draw(st.integers(1, 3))
        masks = np.zeros((n, SIZE), dtype=bool)
        for i in range(n):
            a = draw(st.integers(0, SIZE - 2))
            b = draw(st.integers(a, SIZE - 1))
            masks[i, a : b + 1] = True
        groups.append(QueryGroup.counts(masks))
    if draw(st.booleans()):
        weights = np.asarray(
            [[draw(st.integers(-3, 3)) / 2.0 for _ in range(4)] for _ in range(2)]
        )
        groups.append(QueryGroup.linear(weights))
    return Workload(DOMAIN, groups)


POLICIES = (
    Policy.line(DOMAIN),
    Policy.distance_threshold(DOMAIN, 3),
    Policy.differential_privacy(DOMAIN),
)


@settings(max_examples=30, deadline=None)
@given(workload=workloads(), policy_ix=st.integers(0, len(POLICIES) - 1), optimize=st.booleans())
def test_plan_spec_round_trip_preserves_fingerprint(workload, policy_ix, optimize):
    engine = PolicyEngine(POLICIES[policy_ix], 0.5)
    plan = engine.plan(workload, optimize=optimize)
    spec = json.loads(json.dumps(plan.to_spec()))  # genuine JSON round trip
    back = Plan.from_spec(spec, DOMAIN)
    assert back.fingerprint() == plan.fingerprint()
    assert back.mode == plan.mode
    assert [s.to_spec() for s in back.steps] == [s.to_spec() for s in plan.steps]
    assert back.workload.fingerprint() == plan.workload.fingerprint()
    assert back.to_spec() == plan.to_spec()


def test_round_tripped_plan_keeps_interleaved_answer_order():
    """Auto-grouped batches record flat positions; the spec must carry them
    so a deserialized plan does not silently reorder its answers."""
    from repro import CountQuery, Database, RangeQuery
    from repro.plan import Executor

    rng = np.random.default_rng(2)
    db = Database.from_indices(DOMAIN, rng.integers(0, SIZE, 900))
    engine = PolicyEngine(Policy.line(DOMAIN), 0.5)
    queries = [
        CountQuery.from_mask(DOMAIN, np.arange(SIZE) < 12),
        RangeQuery(DOMAIN, 3, 30),
        CountQuery.from_mask(DOMAIN, np.arange(SIZE) >= 40),
        RangeQuery(DOMAIN, 0, 47),
    ]
    plan = engine.plan(engine.workload(queries), optimize=False)
    direct = Executor(engine).run(plan, db, rng=np.random.default_rng(0)).answers
    back = Plan.from_spec(json.loads(json.dumps(plan.to_spec())), DOMAIN)
    tripped = Executor(engine).run(back, db, rng=np.random.default_rng(0)).answers
    assert np.array_equal(direct, tripped)
    assert back.fingerprint() == plan.fingerprint()


def test_positions_spec_is_validated():
    from repro.core.specbase import SpecError
    from repro.plan import Workload as W

    spec = {
        "kind": "workload",
        "groups": [{"name": "r", "family": "range", "los": [0, 1], "his": [5, 6]}],
        "positions": {"r": [0, 5]},  # not a permutation of [0, 2)
    }
    with pytest.raises(SpecError, match="positions"):
        W.from_spec(spec, DOMAIN)


def test_plan_from_spec_validates_fields():
    from repro.core.specbase import SpecError

    engine = PolicyEngine(Policy.line(DOMAIN), 0.5)
    spec = engine.plan(Workload.ranges(DOMAIN, [0], [5])).to_spec()
    bad = dict(spec, epsilon=-1.0)
    with pytest.raises(SpecError, match="epsilon"):
        Plan.from_spec(bad, DOMAIN)
    bad = dict(spec, steps=[dict(spec["steps"][0], group="ghost")])
    with pytest.raises(SpecError, match="steps"):
        Plan.from_spec(bad, DOMAIN)


def test_incomplete_or_duplicated_step_coverage_is_rejected():
    """An under-covering plan would spend budget, then crash assembling
    answers — it must be refused before any release."""
    from repro.core.specbase import SpecError
    from repro.plan import QueryGroup, Workload as W

    engine = PolicyEngine(Policy.line(DOMAIN), 0.5)
    wl = W(DOMAIN, [QueryGroup.ranges([0], [5]), QueryGroup.counts(
        np.eye(1, SIZE, 3, dtype=bool))])
    spec = engine.plan(wl).to_spec()
    missing = dict(spec, steps=spec["steps"][:1])
    with pytest.raises(SpecError, match="missing steps"):
        Plan.from_spec(missing, DOMAIN)
    doubled = dict(spec, steps=spec["steps"] + [spec["steps"][0]])
    with pytest.raises(SpecError, match="two steps"):
        Plan.from_spec(doubled, DOMAIN)


def test_empty_option_dicts_compare_equal_across_engines():
    """{'range': {}} configures the same mechanisms as {} — a plan from one
    engine must run on the other."""
    from repro import Database
    from repro.plan import Executor

    rng = np.random.default_rng(4)
    db = Database.from_indices(DOMAIN, rng.integers(0, SIZE, 500))
    plain = PolicyEngine(Policy.line(DOMAIN), 0.5)
    emptyopts = PolicyEngine(Policy.line(DOMAIN), 0.5, options={"range": {}})
    plan = plain.plan(Workload.ranges(DOMAIN, [0], [5]))
    Executor(emptyopts).run(plan, db, rng=0)  # must not raise
