"""PolicyEngine: cache identity, registry dispatch, vectorized batch answering."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Database,
    Domain,
    Policy,
    PolicyEngine,
    CountQuery,
    CumulativeHistogramQuery,
    HistogramQuery,
    KMeansSumQuery,
    LinearQuery,
    RangeQuery,
)
from repro.core.composition import PrivacyAccountant
from repro.core.graphs import ExplicitGraph
from repro.core.queries import Partition
from repro.core.sensitivity import sensitivity as analytic_sensitivity
from repro.engine import (
    MechanismRegistry,
    SensitivityCache,
    default_registry,
    policy_fingerprint,
    query_cache_key,
)
from repro.mechanisms.hierarchical import HierarchicalMechanism
from repro.mechanisms.ordered import OrderedMechanism
from repro.mechanisms.ordered_hierarchical import OrderedHierarchicalMechanism


@pytest.fixture
def domain():
    return Domain.integers("v", 40)


@pytest.fixture
def db(domain):
    rng = np.random.default_rng(17)
    return Database.from_indices(domain, rng.integers(0, domain.size, 800))


def _all_policies(domain):
    part = Partition.from_blocks(
        domain, [list(range(0, 10)), list(range(10, 25)), list(range(25, 40))]
    )
    return {
        "full": Policy.differential_privacy(domain),
        "attribute": Policy.attribute(domain),
        "line": Policy.line(domain),
        "threshold": Policy.distance_threshold(domain, 4),
        "partition": Policy.partitioned(part),
        "explicit": Policy(domain, ExplicitGraph(domain, [(0, 3), (5, 39)])),
    }


def _queries_for(policy):
    domain = policy.domain
    qs = [
        HistogramQuery(domain),
        CumulativeHistogramQuery(domain),
        RangeQuery(domain, 3, 17),
        RangeQuery(domain, 0, domain.size - 1),
        CountQuery.from_mask(domain, np.arange(domain.size) % 3 == 0),
        LinearQuery(domain, np.linspace(-1, 2, 5)),
        KMeansSumQuery(domain, lambda pts: np.zeros(len(pts), dtype=np.int64), 2),
    ]
    part = Partition.from_blocks(
        domain, [list(range(0, 20)), list(range(20, domain.size))]
    )
    qs.append(HistogramQuery(domain, part))
    return qs


class TestSensitivityCache:
    def test_cached_equals_uncached_for_every_graph_family(self, domain):
        for name, policy in _all_policies(domain).items():
            engine = PolicyEngine(policy, 0.5, cache=SensitivityCache())
            for query in _queries_for(policy):
                expected = analytic_sensitivity(query, policy)
                assert engine.sensitivity(query) == expected, (name, query)
                # second read must hit the cache and return the same value
                before = engine.cache_info()["hits"]
                assert engine.sensitivity(query) == expected
                assert engine.cache_info()["hits"] == before + 1

    def test_structurally_equal_policies_share_entries(self, domain):
        cache = SensitivityCache()
        e1 = PolicyEngine(Policy.distance_threshold(domain, 4), 0.5, cache=cache)
        e2 = PolicyEngine(
            Policy.distance_threshold(Domain.integers("v", 40), 4), 0.9, cache=cache
        )
        q = RangeQuery(domain, 3, 17)
        e1.sensitivity(q)
        misses = cache.info()["misses"]
        e2.sensitivity(q)
        assert cache.info()["misses"] == misses  # pure hit

    def test_different_policies_do_not_collide(self, domain):
        cache = SensitivityCache()
        q = CountQuery.from_mask(domain, np.arange(domain.size) < 20)
        line = PolicyEngine(Policy.line(domain), 0.5, cache=cache)
        part = PolicyEngine(
            Policy.partitioned(
                Partition.from_blocks(domain, [list(range(0, 20)), list(range(20, 40))])
            ),
            0.5,
            cache=cache,
        )
        assert line.sensitivity(q) == 1.0
        assert part.sensitivity(q) == 0.0  # blocks aligned with the mask

    def test_constrained_policy_histogram_routes_to_constrained_calculator(self, domain, db):
        from repro.constraints.applications import constrained_histogram_sensitivity
        from repro.core.queries import ConstraintSet

        queries = [CountQuery.from_mask(domain, np.arange(domain.size) < 20)]
        policy = Policy.line(domain).with_constraints(
            ConstraintSet.from_database(queries, db)
        )
        engine = PolicyEngine(policy, 0.5, cache=SensitivityCache())
        assert engine.sensitivity(HistogramQuery(domain)) == pytest.approx(
            constrained_histogram_sensitivity(policy)
        )
        with pytest.raises(ValueError):
            engine.sensitivity(RangeQuery(domain, 0, 3))

    def test_eviction_keeps_cache_bounded(self, domain):
        cache = SensitivityCache(maxsize=4)
        engine = PolicyEngine(Policy.line(domain), 0.5, cache=cache)
        for lo in range(10):
            engine.sensitivity(RangeQuery(domain, lo, 20))
        assert len(cache) <= 4


class TestFingerprints:
    def test_policy_fingerprint_stability(self, domain):
        assert policy_fingerprint(Policy.line(domain)) == policy_fingerprint(
            Policy.line(Domain.integers("v", 40))
        )
        assert policy_fingerprint(Policy.line(domain)) != policy_fingerprint(
            Policy.differential_privacy(domain)
        )

    def test_constraints_change_the_fingerprint(self, domain, db):
        from repro.core.queries import ConstraintSet

        queries = [CountQuery.from_mask(domain, np.arange(domain.size) < 7)]
        p = Policy.line(domain)
        pc = p.with_constraints(ConstraintSet.from_database(queries, db))
        assert policy_fingerprint(p) != policy_fingerprint(pc)

    def test_constraint_order_does_not_change_the_fingerprint(self, domain, db):
        from repro.core.queries import Constraint, ConstraintSet

        q1 = CountQuery.from_mask(domain, np.arange(domain.size) < 7)
        q2 = CountQuery.from_mask(domain, np.arange(domain.size) % 2 == 0)
        forward = Policy.line(domain).with_constraints(
            ConstraintSet([Constraint(q1, 3), Constraint(q2, 20)])
        )
        backward = Policy.line(domain).with_constraints(
            ConstraintSet([Constraint(q2, 20), Constraint(q1, 3)])
        )
        assert policy_fingerprint(forward) == policy_fingerprint(backward)
        # ... while a different published answer still changes it
        other = Policy.line(domain).with_constraints(
            ConstraintSet([Constraint(q1, 4), Constraint(q2, 20)])
        )
        assert policy_fingerprint(forward) != policy_fingerprint(other)

    def test_query_keys_capture_parameters(self, domain):
        assert query_cache_key(RangeQuery(domain, 1, 5)) != query_cache_key(
            RangeQuery(domain, 1, 6)
        )
        m1 = CountQuery.from_mask(domain, np.arange(domain.size) < 5)
        m2 = CountQuery.from_mask(domain, np.arange(domain.size) < 6)
        assert query_cache_key(m1) != query_cache_key(m2)
        assert query_cache_key(HistogramQuery(domain)) == ("histogram", None)


class TestRegistry:
    def test_default_dispatch_follows_the_paper(self, domain):
        cases = [
            (Policy.line(domain), OrderedMechanism),
            (Policy.distance_threshold(domain, 4), OrderedHierarchicalMechanism),
            (Policy.differential_privacy(domain), HierarchicalMechanism),
            (Policy.attribute(domain), HierarchicalMechanism),
        ]
        for policy, mech_type in cases:
            engine = PolicyEngine(policy, 0.5)
            assert isinstance(engine.mechanism("range"), mech_type), policy

    def test_options_reach_the_factory(self, domain):
        engine = PolicyEngine(
            Policy.distance_threshold(domain, 4),
            0.5,
            options={"range": {"fanout": 4, "consistent": False, "budget_split": "uniform"}},
        )
        mech = engine.mechanism("range")
        assert mech.fanout == 4 and mech.consistent is False
        assert mech.eps_s == pytest.approx(mech.eps_h)

    def test_irrelevant_options_are_tolerated(self, domain):
        # one options dict can serve every graph family in a sweep
        engine = PolicyEngine(
            Policy.line(domain), 0.5, options={"range": {"fanout": 4, "budget_split": "uniform"}}
        )
        assert isinstance(engine.mechanism("range"), OrderedMechanism)

    def test_custom_rule_takes_priority(self, domain):
        reg = default_registry()
        reg.register(
            "range",
            None,
            lambda policy, epsilon, **_: OrderedMechanism(policy, epsilon),
            name="custom-ordered",
            front=True,
        )
        engine = PolicyEngine(Policy.distance_threshold(domain, 4), 0.5, registry=reg)
        assert engine.strategy("range") == "custom-ordered"
        assert isinstance(engine.mechanism("range"), OrderedMechanism)

    def test_unknown_family_raises(self, domain):
        with pytest.raises(LookupError):
            PolicyEngine(Policy.line(domain), 0.5).mechanism("nope")

    def test_fresh_registries_are_independent(self):
        r1, r2 = default_registry(), default_registry()
        r1.register("range", None, lambda p, e, **_: None, name="x", front=True)
        assert r2.rule_name("range", Policy.line(Domain.integers("v", 4))) != "x"

    def test_fingerprint_tracks_the_rule_table(self):
        r1, r2 = default_registry(), default_registry()
        assert r1.fingerprint() == r2.fingerprint()  # equal tables share
        before = r1.fingerprint()
        r1.register("range", None, lambda p, e, **_: None, name="x")
        assert r1.fingerprint() != before  # mutation re-keys cached plans

    def test_fingerprint_distinguishes_lambda_bodies_and_closures(self):
        def build(flag, fanout):
            reg = default_registry()
            reg.register(
                "range", None, lambda p, e, **_: (fanout, None),
                when=(lambda p: True) if flag else (lambda p: False),
                name="x", front=True,
            )
            return reg

        # same source locations (same qualnames): the predicate bodies and
        # the closed-over fanout must still tell the tables apart
        assert build(True, 4).fingerprint() != build(False, 4).fingerprint()
        assert build(True, 4).fingerprint() != build(True, 16).fingerprint()
        assert build(True, 4).fingerprint() == build(True, 4).fingerprint()


class TestBatchAnswering:
    def test_range_batch_bitwise_identical_to_scalar_calls(self, domain, db):
        engine = PolicyEngine(
            Policy.distance_threshold(domain, 4), 0.5, options={"range": {"consistent": False}}
        )
        released = engine.release(db, "range", rng=np.random.default_rng(5))
        rng = np.random.default_rng(1)
        los = rng.integers(0, domain.size, 200)
        his = rng.integers(0, domain.size, 200)
        los, his = np.minimum(los, his), np.maximum(los, his)
        queries = [RangeQuery(domain, int(a), int(b)) for a, b in zip(los, his)]
        batch = engine.answer(queries, releases={"range": released})
        scalar = np.array([released.range(int(a), int(b)) for a, b in zip(los, his)])
        assert np.array_equal(batch, scalar)

    def test_same_rng_stream_reproduces_the_mechanism(self, domain, db):
        # engine.answer and a hand-built mechanism consume identical noise
        engine = PolicyEngine(
            Policy.distance_threshold(domain, 4), 0.5, options={"range": {"consistent": False}}
        )
        queries = [RangeQuery(domain, 2, 9), RangeQuery(domain, 0, 30)]
        got = engine.answer(queries, db, rng=np.random.default_rng(123))
        mech = OrderedHierarchicalMechanism(
            Policy.distance_threshold(domain, 4), 0.5, consistent=False
        )
        rel = mech.release(db, rng=np.random.default_rng(123))
        assert np.array_equal(got, [rel.range(2, 9), rel.range(0, 30)])

    def test_count_batch_matches_matrix_product(self, domain, db):
        engine = PolicyEngine(Policy.differential_privacy(domain), 0.5)
        released = engine.release(db, "histogram", rng=np.random.default_rng(2))
        masks = np.stack([np.arange(domain.size) % k == 0 for k in (2, 3, 5)])
        queries = [CountQuery.from_mask(domain, m) for m in masks]
        got = engine.answer(queries, releases={"histogram": released})
        assert np.array_equal(got, masks.astype(float) @ released.cells)

    def test_mixed_batch_preserves_input_order(self, domain, db):
        engine = PolicyEngine(Policy.distance_threshold(domain, 4), 0.5)
        queries = [
            CountQuery.from_mask(domain, np.arange(domain.size) < 13),
            RangeQuery(domain, 5, 20),
            LinearQuery(domain, np.full(db.n, 0.5)),
            RangeQuery(domain, 0, 4),
            CountQuery.from_mask(domain, np.arange(domain.size) >= 35),
        ]
        out = engine.answer(queries, db, rng=0)
        assert out.shape == (5,)
        assert np.isfinite(out).all()
        # three families -> three releases at epsilon each
        assert engine.spent_epsilon == pytest.approx(1.5)

    def test_accountant_receives_every_spend(self, domain, db):
        policy = Policy.distance_threshold(domain, 4)
        acct = PrivacyAccountant(policy, budget=2.0)
        engine = PolicyEngine(policy, 0.5, accountant=acct)
        engine.answer([RangeQuery(domain, 1, 7)], db, rng=0)
        engine.answer([CountQuery.from_mask(domain, np.arange(domain.size) < 5)], db, rng=0)
        assert acct.sequential_total() == pytest.approx(1.0)
        assert [label for label, _ in acct.spends] == ["range", "histogram"]

    def test_budget_refusal_happens_before_any_release(self, domain, db):
        policy = Policy.line(domain)
        acct = PrivacyAccountant(policy, budget=0.7)
        engine = PolicyEngine(policy, 0.5, accountant=acct)
        engine.release(db, "range", rng=0)
        with pytest.raises(RuntimeError, match="budget exhausted"):
            engine.release(db, "range", rng=1)
        # neither ledger moved on the refused spend
        assert acct.sequential_total() == pytest.approx(0.5)
        assert engine.spent_epsilon == pytest.approx(0.5)

    def test_answers_from_releases_are_free(self, domain, db):
        engine = PolicyEngine(Policy.distance_threshold(domain, 4), 0.5)
        released = engine.release(db, "range", rng=0)
        spent = engine.spent_epsilon
        engine.answer([RangeQuery(domain, 1, 7)], releases={"range": released})
        assert engine.spent_epsilon == spent

    def test_linear_batch_single_release(self, domain, db):
        engine = PolicyEngine(Policy.line(domain), 0.5)
        W = np.vstack([np.ones(db.n), np.linspace(0, 1, db.n)])
        out = engine.answer_linear(W, db, rng=np.random.default_rng(3))
        assert out.shape == (2,)
        assert engine.spent_epsilon == pytest.approx(0.5)
        truth = W @ db.points()[:, 0]
        # line graph: sensitivity max_t sum_i |W[i,t]| * max_edge_l1 = 2
        assert np.abs(out - truth).max() < 200 / 0.5

    def test_linear_release_reuse_is_free(self, domain, db):
        from repro.engine import ReleasedLinear

        engine = PolicyEngine(Policy.line(domain), 0.5)
        W = np.vstack([np.ones(db.n), np.linspace(0, 1, db.n)])
        release = ReleasedLinear()
        first = engine.answer_linear(W, db, rng=0, release=release)
        assert engine.spent_epsilon == pytest.approx(0.5)
        # identical rows (any subset, any order) are free post-processing
        again = engine.answer_linear(W[::-1], db, rng=1, release=release)
        assert engine.spent_epsilon == pytest.approx(0.5)
        assert np.array_equal(again, first[::-1])
        # a genuinely new row costs one more release, covering only that row
        W2 = np.vstack([W[0], np.full(db.n, 2.0)])
        mixed = engine.answer_linear(W2, db, rng=2, release=release)
        assert engine.spent_epsilon == pytest.approx(1.0)
        assert mixed[0] == first[0]
        assert len(release) == 3

    def test_answer_records_releases_into_the_callers_dict(self, domain, db):
        engine = PolicyEngine(Policy.line(domain), 0.5)
        releases: dict = {}
        queries = [
            RangeQuery(domain, 1, 7),
            CountQuery.from_mask(domain, np.arange(domain.size) < 5),
            LinearQuery(domain, np.full(db.n, 0.5)),
        ]
        first = engine.answer(queries, db, rng=0, releases=releases)
        assert set(releases) == {"range", "histogram", "linear"}
        spent = engine.spent_epsilon
        # the populated dict makes the next call free and identical
        second = engine.answer(queries, db, rng=1, releases=releases)
        assert engine.spent_epsilon == spent
        assert np.array_equal(first, second)

    def test_accountant_override_charges_the_callers_ledger(self, domain, db):
        policy = Policy.line(domain)
        shared = PrivacyAccountant(policy)
        engine = PolicyEngine(policy, 0.5, accountant=shared)
        mine = PrivacyAccountant(policy, budget=1.0)
        engine.answer([RangeQuery(domain, 1, 7)], db, rng=0, accountant=mine)
        assert mine.sequential_total() == pytest.approx(0.5)
        assert shared.sequential_total() == 0.0

    def test_vector_valued_queries_are_rejected(self, domain, db):
        engine = PolicyEngine(Policy.line(domain), 0.5)
        with pytest.raises(TypeError):
            engine.answer([HistogramQuery(domain)], db, rng=0)

    def test_missing_db_raises(self, domain):
        engine = PolicyEngine(Policy.line(domain), 0.5)
        with pytest.raises(ValueError):
            engine.answer([RangeQuery(domain, 1, 2)])

    def test_histogram_release_under_partitioned_secrets_is_exact(self, domain, db):
        part = Partition.from_blocks(domain, [list(range(domain.size))])
        engine = PolicyEngine(Policy.partitioned(part), 0.5)
        released = engine.release(db, "histogram", rng=0)
        # one-block partition graph: complete-histogram sensitivity is 2 —
        # but an edgeless check: partition of the whole domain is a clique,
        # so noise is real; just verify totals are sane post-processing
        assert released.counts(np.ones(domain.size, bool)) == pytest.approx(
            released.total()
        )
