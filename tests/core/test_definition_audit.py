"""End-to-end certification of the Blowfish definition (Definition 4.2).

These tests do not trust sensitivity arithmetic: they enumerate neighbor
pairs and check the probability-ratio inequality directly, either exactly
(GraphRandomizedResponse has an enumerable output distribution) or through
the closed-form privacy loss of additive-Laplace mechanisms.
"""

import numpy as np
import pytest

from repro import Database, Domain, Partition, Policy
from repro.core.audit import distinguishability_profile, laplace_realized_epsilon
from repro.core.definition import realized_epsilon, satisfies_blowfish
from repro.mechanisms import GraphRandomizedResponse


class TestGraphRandomizedResponse:
    @pytest.mark.parametrize(
        "policy_factory",
        [
            Policy.differential_privacy,
            Policy.line,
            lambda d: Policy.distance_threshold(d, 2.0),
        ],
    )
    def test_satisfies_blowfish_exactly(self, policy_factory):
        domain = Domain.integers("v", 4)
        policy = policy_factory(domain)
        eps = 0.8
        mech = GraphRandomizedResponse(policy, eps)
        assert satisfies_blowfish(mech, policy, eps, n=1)

    def test_violates_smaller_epsilon(self):
        domain = Domain.integers("v", 4)
        policy = Policy.differential_privacy(domain)
        mech = GraphRandomizedResponse(policy, 1.0)
        realized = realized_epsilon(mech, policy, n=1)
        assert realized > 0.3
        assert not satisfies_blowfish(mech, policy, 0.3, n=1)

    def test_two_tuple_product(self):
        domain = Domain.integers("v", 3)
        policy = Policy.line(domain)
        mech = GraphRandomizedResponse(policy, 0.5)
        assert satisfies_blowfish(mech, policy, 0.5, n=2)

    def test_partition_blocks_never_mix(self):
        domain = Domain.integers("v", 4)
        labels = np.array([0, 0, 1, 1])
        policy = Policy.partitioned(Partition(domain, labels))
        mech = GraphRandomizedResponse(policy, 1.0)
        db = Database.from_indices(domain, [0])
        dist = mech.output_distribution(db)
        assert all(out[0] in (0, 1) for out in dist)
        assert sum(dist.values()) == pytest.approx(1.0)
        # still private within components
        assert satisfies_blowfish(mech, policy, 1.0, n=1)

    def test_transition_rows_normalized(self):
        domain = Domain.integers("v", 5)
        mech = GraphRandomizedResponse(Policy.line(domain), 0.7)
        assert np.allclose(mech.transition.sum(axis=1), 1.0)

    def test_release_returns_database(self, rng):
        domain = Domain.integers("v", 4)
        policy = Policy.differential_privacy(domain)
        mech = GraphRandomizedResponse(policy, 5.0)
        db = Database.from_indices(domain, [0, 1, 2, 3])
        out = mech.release(db, rng=rng)
        assert out.n == 4
        assert out.domain == domain

    def test_rejects_constrained_policy(self, tiny_domain):
        import numpy as np

        from repro import Constraint, ConstraintSet, CountQuery

        q = CountQuery.from_mask(tiny_domain, np.array([True, False, False]))
        policy = Policy.full_domain(tiny_domain, ConstraintSet([Constraint(q, 1)]))
        with pytest.raises(ValueError):
            GraphRandomizedResponse(policy, 1.0)


class TestLaplaceAudit:
    def test_realized_epsilon_equals_sensitivity_over_scale(self, tiny_domain):
        policy = Policy.differential_privacy(tiny_domain)
        # histogram sensitivity 2; scale 4 -> realized eps must be 0.5
        eps = laplace_realized_epsilon(lambda db: db.histogram(), policy, scale=4.0, n=2)
        assert eps == pytest.approx(0.5)

    def test_line_policy_cumulative_is_cheaper(self, tiny_domain):
        dp = Policy.differential_privacy(tiny_domain)
        line = Policy.line(tiny_domain)
        q = lambda db: db.cumulative_histogram()
        assert laplace_realized_epsilon(q, line, 1.0, 2) < laplace_realized_epsilon(
            q, dp, 1.0, 2
        )

    def test_scale_validation(self, tiny_domain):
        policy = Policy.differential_privacy(tiny_domain)
        with pytest.raises(ValueError):
            laplace_realized_epsilon(lambda db: db.histogram(), policy, 0.0, 1)


class TestDistinguishabilityProfile:
    def test_profile_respects_eqn9(self):
        # Eqn (9): loss at graph distance d is bounded by (S(f,P)/scale) * d
        domain = Domain.integers("v", 6)
        policy = Policy.line(domain)
        base = Database.from_indices(domain, [2, 4])
        scale = 2.0
        profile = distinguishability_profile(
            lambda db: db.cumulative_histogram(), policy, scale, base, individual=0
        )
        per_hop = 1.0 / scale  # cumulative sensitivity 1 under the line graph
        for d, loss in profile.items():
            assert loss <= per_hop * d + 1e-9

    def test_far_pairs_leak_more(self):
        domain = Domain.integers("v", 6)
        policy = Policy.line(domain)
        base = Database.from_indices(domain, [0])
        profile = distinguishability_profile(
            lambda db: db.cumulative_histogram(), policy, 1.0, base
        )
        assert profile[5.0] > profile[1.0]
