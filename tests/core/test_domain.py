"""Tests for repro.core.domain: attributes and mixed-radix domains."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Attribute, Domain


class TestAttribute:
    def test_basic_container(self):
        a = Attribute("color", ["red", "green", "blue"])
        assert len(a) == 3
        assert list(a) == ["red", "green", "blue"]
        assert a[1] == "green"
        assert "red" in a
        assert "purple" not in a

    def test_rank(self):
        a = Attribute("x", [10, 20, 30])
        assert a.rank(20) == 1
        with pytest.raises(KeyError):
            a.rank(99)

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Attribute("x", [1, 2, 1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Attribute("x", [])

    def test_numeric_detection(self):
        assert Attribute("x", [1, 2.5, np.int64(3)]).is_numeric
        assert not Attribute("x", ["a", "b"]).is_numeric
        assert not Attribute("x", [1, "b"]).is_numeric

    def test_numeric_distance(self):
        a = Attribute("x", [0, 5, 20])
        assert a.distance(0, 20) == 20.0
        assert a.distance(5, 5) == 0.0

    def test_categorical_distance_is_discrete(self):
        a = Attribute("x", ["a", "b", "c"])
        assert a.distance("a", "b") == 1.0
        assert a.distance("c", "c") == 0.0

    def test_span(self):
        assert Attribute("x", [0, 5, 20]).span == 20.0
        assert Attribute("x", ["a", "b"]).span == 1.0
        assert Attribute("x", [7]).span == 0.0

    def test_equality_and_hash(self):
        a1 = Attribute("x", [1, 2])
        a2 = Attribute("x", [1, 2])
        a3 = Attribute("y", [1, 2])
        assert a1 == a2 and hash(a1) == hash(a2)
        assert a1 != a3

    def test_repr_truncates_long_values(self):
        long = Attribute("x", range(100))
        assert "100 values" in repr(long)


class TestDomainConstruction:
    def test_ordered(self):
        d = Domain.ordered("age", range(5))
        assert d.size == 5
        assert d.is_ordered
        assert d.shape == (5,)

    def test_integers(self):
        d = Domain.integers("v", 7)
        assert d.size == 7
        assert d.value_of(3) == (3,)

    def test_integers_requires_positive(self):
        with pytest.raises(ValueError):
            Domain.integers("v", 0)

    def test_grid(self):
        d = Domain.grid([4, 3])
        assert d.size == 12
        assert d.shape == (4, 3)
        assert d.n_attributes == 2

    def test_grid_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Domain.grid([4, 0])

    def test_uniform_grid_values(self):
        d = Domain.uniform_grid([3, 2], spacings=[5.0, 2.0], origins=[10.0, 0.0])
        assert d.attributes[0].values == (10.0, 15.0, 20.0)
        assert d.attributes[1].values == (0.0, 2.0)

    def test_uniform_grid_rejects_bad_spacing(self):
        with pytest.raises(ValueError):
            Domain.uniform_grid([3], spacings=[0.0])

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Domain([Attribute("x", [1]), Attribute("x", [2])])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Domain([])


class TestIndexing:
    def test_round_trip_explicit(self, abc_domain):
        for idx in range(abc_domain.size):
            assert abc_domain.index_of(abc_domain.value_of(idx)) == idx

    def test_row_major_order(self, abc_domain):
        # last attribute varies fastest
        assert abc_domain.value_of(0) == ("a1", "b1", "c1")
        assert abc_domain.value_of(1) == ("a1", "b1", "c2")
        assert abc_domain.value_of(3) == ("a1", "b2", "c1")

    def test_bare_value_for_1d(self):
        d = Domain.integers("v", 5)
        assert d.index_of(3) == 3

    def test_index_out_of_range(self, abc_domain):
        with pytest.raises(IndexError):
            abc_domain.value_of(12)
        with pytest.raises(IndexError):
            abc_domain.value_of(-1)

    def test_wrong_tuple_length(self, abc_domain):
        with pytest.raises(ValueError):
            abc_domain.index_of(("a1", "b1"))

    def test_ranks_round_trip(self, abc_domain):
        for idx in range(abc_domain.size):
            assert abc_domain.index_of_ranks(abc_domain.ranks_of(idx)) == idx

    def test_index_of_ranks_validates(self, abc_domain):
        with pytest.raises(IndexError):
            abc_domain.index_of_ranks((0, 0, 5))
        with pytest.raises(ValueError):
            abc_domain.index_of_ranks((0, 0))

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, data):
        shape = data.draw(
            st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=4)
        )
        d = Domain.grid(shape)
        idx = data.draw(st.integers(min_value=0, max_value=d.size - 1))
        assert d.index_of(d.value_of(idx)) == idx
        assert d.index_of_ranks(d.ranks_of(idx)) == idx

    def test_iter_values_order(self, grid_domain):
        values = list(grid_domain.iter_values())
        assert len(values) == 12
        assert values[0] == (0, 0)
        assert values[-1] == (3, 2)

    def test_enumeration_guard(self):
        d = Domain.grid([3000, 3000])
        with pytest.raises(ValueError, match="too large"):
            list(d.iter_values())


class TestTables:
    def test_ranks_table(self, grid_domain):
        table = grid_domain.ranks_table()
        assert table.shape == (12, 2)
        for idx in range(12):
            assert tuple(table[idx]) == grid_domain.ranks_of(idx)

    def test_numeric_table(self, grid_domain):
        table = grid_domain.numeric_table()
        assert table[5].tolist() == [1.0, 2.0]

    def test_numeric_table_rejects_categorical(self, abc_domain):
        with pytest.raises(TypeError):
            abc_domain.numeric_table()

    def test_numeric_values_matches_table(self, grid_domain):
        idx = np.array([0, 5, 11])
        expected = grid_domain.numeric_table()[idx]
        assert np.array_equal(grid_domain.numeric_values(idx), expected)

    def test_numeric_values_on_huge_domain(self):
        d = Domain.grid([100, 100, 100, 100])  # 1e8 cells: tables would blow up
        vals = d.numeric_values(np.array([0, d.size - 1]))
        assert vals[0].tolist() == [0.0, 0.0, 0.0, 0.0]
        assert vals[1].tolist() == [99.0, 99.0, 99.0, 99.0]


class TestMetric:
    def test_l1_distance_grid(self, grid_domain):
        i = grid_domain.index_of((0, 0))
        j = grid_domain.index_of((3, 2))
        assert grid_domain.l1_distance(i, j) == 5.0

    def test_l1_distance_mixed(self, abc_domain):
        i = abc_domain.index_of(("a1", "b1", "c1"))
        j = abc_domain.index_of(("a2", "b1", "c3"))
        # categorical attributes contribute the discrete metric
        assert abc_domain.l1_distance(i, j) == 2.0

    def test_hamming(self, abc_domain):
        i = abc_domain.index_of(("a1", "b1", "c1"))
        j = abc_domain.index_of(("a2", "b2", "c1"))
        assert abc_domain.hamming_distance(i, j) == 2

    def test_diameter(self, grid_domain):
        assert grid_domain.diameter() == 5.0

    def test_diameter_uniform_grid(self):
        d = Domain.uniform_grid([400, 300], spacings=[5.0, 5.0])
        assert d.diameter() == (399 + 299) * 5.0

    def test_value_gap(self):
        d = Domain.ordered("v", [0, 10, 15])
        assert d.value_gap(0, 2) == 15.0

    def test_value_gap_requires_ordered(self, grid_domain):
        with pytest.raises(TypeError):
            grid_domain.value_gap(0, 1)


class TestProjection:
    def test_project(self, abc_domain):
        sub = abc_domain.project(["A1", "A3"])
        assert sub.size == 6
        assert [a.name for a in sub.attributes] == ["A1", "A3"]

    def test_project_unknown(self, abc_domain):
        with pytest.raises(KeyError):
            abc_domain.project(["A9"])

    def test_attribute_lookup(self, abc_domain):
        assert abc_domain.attribute("A2").values == ("b1", "b2")
        assert abc_domain.attribute_position("A3") == 2
        with pytest.raises(KeyError):
            abc_domain.attribute("missing")

    def test_equality(self):
        assert Domain.grid([2, 2]) == Domain.grid([2, 2])
        assert Domain.grid([2, 2]) != Domain.grid([2, 3])
