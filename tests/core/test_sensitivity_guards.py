"""Regression tests for the dense-graph guards on sensitivity fallbacks.

Before these guards, ``count_query_sensitivity`` and
``range_query_sensitivity`` fell through to ``for i, j in graph.edges()``
with no domain-size check, so an :class:`AttributeGraph` over a large
cross-product domain (or a dense :class:`DistanceThresholdGraph`) hung or
blew up.  The fixes: analytic branches for every implicit family via
``DiscriminativeGraph.crosses_mask`` plus the same ``MAX_ENUMERABLE``
conservative-bound pattern ``histogram_sensitivity`` already used.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import Domain, Policy
from repro.core.domain import Attribute
from repro.core.graphs import (
    EDGE_SCAN_LIMIT,
    DiscriminativeGraph,
    DistanceThresholdGraph,
    ExplicitGraph,
    LineGraph,
)
from repro.core.queries import CountQuery, Partition
from repro.core.sensitivity import (
    count_query_sensitivity,
    range_query_sensitivity,
)


class _OpaqueGraph(ExplicitGraph):
    """An explicit graph pretending to have no analytic rules — exercises
    the generic (guarded) fallback paths."""

    def crosses_mask(self, mask):
        return DiscriminativeGraph.crosses_mask(self, mask)

    def edges_upper_bound(self):
        return DiscriminativeGraph.edges_upper_bound(self)


def _big_grid_domain() -> Domain:
    # 2 attributes, size 2100^2 = 4,410,000 > MAX_ENUMERABLE (2^22)
    d = Domain.grid([2100, 2100])
    assert d.size > Domain.MAX_ENUMERABLE
    return d


class TestCountQueryGuards:
    def test_attribute_graph_large_domain_returns_fast(self):
        d = _big_grid_domain()
        p = Policy.attribute(d)
        mask = np.zeros(d.size, dtype=bool)
        mask[: d.size // 3] = True
        q = CountQuery.from_mask(d, mask)
        t0 = time.perf_counter()
        s = count_query_sensitivity(p, q)
        assert time.perf_counter() - t0 < 1.0
        # G^attr is connected: any non-constant mask is crossed
        assert s == 1.0

    def test_attribute_graph_constant_masks_are_free(self):
        d = _big_grid_domain()
        p = Policy.attribute(d)
        assert count_query_sensitivity(p, CountQuery.from_mask(d, np.zeros(d.size, bool))) == 0.0
        assert count_query_sensitivity(p, CountQuery.from_mask(d, np.ones(d.size, bool))) == 0.0

    def test_attribute_graph_matches_edge_scan_on_small_domain(self, abc_domain):
        p = Policy.attribute(abc_domain)
        rng = np.random.default_rng(3)
        for _ in range(10):
            mask = rng.random(abc_domain.size) < 0.5
            q = CountQuery.from_mask(abc_domain, mask)
            ref = 1.0 if any(
                mask[i] != mask[j] for i, j in p.graph.edges()
            ) else 0.0
            assert count_query_sensitivity(p, q) == ref

    def test_dense_distance_threshold_is_conservative_not_hanging(self):
        d = _big_grid_domain()
        p = Policy.distance_threshold(d, 2.0)
        mask = np.zeros(d.size, dtype=bool)
        mask[::7] = True
        q = CountQuery.from_mask(d, mask)
        t0 = time.perf_counter()
        s = count_query_sensitivity(p, q)
        assert time.perf_counter() - t0 < 1.0
        assert s == 1.0  # conservative upper bound: counts move by <= 1

    def test_ordered_distance_threshold_is_exact(self):
        # values 0,1,100,101: theta=1 links only within the two clusters
        d = Domain.ordered("v", [0.0, 1.0, 100.0, 101.0])
        p = Policy.distance_threshold(d, 1.0)
        crossed = CountQuery.from_mask(d, np.array([True, False, False, False]))
        aligned = CountQuery.from_mask(d, np.array([True, True, False, False]))
        assert count_query_sensitivity(p, crossed) == 1.0
        assert count_query_sensitivity(p, aligned) == 0.0

    def test_opaque_graph_above_limit_falls_back_to_conservative(self, monkeypatch):
        d = Domain.integers("v", 64)
        g = _OpaqueGraph(d, [(0, 1)])
        p = Policy(d, g)
        mask = np.zeros(d.size, bool)
        mask[0] = True
        q = CountQuery.from_mask(d, mask)
        assert count_query_sensitivity(p, q) == 1.0  # exact: edge (0,1) crossed
        # shrink the scan limit so the guard trips -> conservative bound
        monkeypatch.setattr("repro.core.graphs.EDGE_SCAN_LIMIT", 10)
        q2 = CountQuery.from_mask(d, np.roll(mask, 10))  # no edge crossed
        assert count_query_sensitivity(p, q2) == 1.0


class TestRangeQueryGuards:
    def test_partition_graph_vectorized(self, small_ordered_domain):
        part = Partition.from_blocks(
            small_ordered_domain, [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]
        )
        p = Policy.partitioned(part)
        assert range_query_sensitivity(p, 0, 4) == 0.0
        assert range_query_sensitivity(p, 0, 3) == 1.0
        assert range_query_sensitivity(p, 2, 7) == 1.0

    def test_distance_threshold_boundary_exactness(self):
        d = Domain.ordered("v", [0.0, 1.0, 100.0, 101.0])
        p = Policy.distance_threshold(d, 1.0)
        # boundary between index 1 and 2 spans a 99-unit gap: no edge crosses
        assert range_query_sensitivity(p, 0, 1) == 0.0
        assert range_query_sensitivity(p, 2, 3) == 0.0
        # boundaries inside a cluster are crossed by the adjacent edge
        assert range_query_sensitivity(p, 0, 0) == 1.0
        assert range_query_sensitivity(p, 0, 2) == 1.0

    def test_line_graph_proper_ranges(self, small_ordered_domain):
        p = Policy.line(small_ordered_domain)
        assert range_query_sensitivity(p, 3, 6) == 1.0
        assert range_query_sensitivity(p, 0, 9) == 0.0

    def test_opaque_graph_above_limit_is_conservative(self, monkeypatch):
        d = Domain.integers("v", 64)
        g = _OpaqueGraph(d, [(0, 63)])
        p = Policy(d, g)
        assert range_query_sensitivity(p, 0, 10) == 1.0
        assert range_query_sensitivity(p, 1, 62) == 0.0  # exact scan: no crossing
        monkeypatch.setattr("repro.core.graphs.EDGE_SCAN_LIMIT", 10)
        # guard trips -> conservative 1.0 even where the exact answer is 0
        assert range_query_sensitivity(p, 1, 62) == 1.0


class TestCrossesMask:
    def test_matches_edge_scan_for_every_family(self, small_ordered_domain):
        d = small_ordered_domain
        part = Partition.from_blocks(d, [[0, 1, 2], [3, 4], [5, 6, 7, 8, 9]])
        graphs = [
            Policy.differential_privacy(d).graph,
            Policy.line(d).graph,
            Policy.distance_threshold(d, 3).graph,
            Policy.partitioned(part).graph,
            ExplicitGraph(d, [(0, 5), (2, 9)]),
        ]
        rng = np.random.default_rng(11)
        for graph in graphs:
            for _ in range(8):
                mask = rng.random(d.size) < 0.4
                ref = any(mask[i] != mask[j] for i, j in graph.edges())
                assert graph.crosses_mask(mask) == ref, type(graph).__name__

    def test_categorical_distance_threshold(self):
        d = Domain.ordered("color", ["r", "g", "b"])
        g = DistanceThresholdGraph(d, 1.0)
        assert g.crosses_mask(np.array([True, False, False]))
        g2 = DistanceThresholdGraph(d, 0.5)
        assert not g2.crosses_mask(np.array([True, False, False]))

    def test_shape_validation(self, small_ordered_domain):
        g = LineGraph(small_ordered_domain)
        with pytest.raises(ValueError):
            g.crosses_mask(np.ones(3, dtype=bool))


class TestMemoizedProperties:
    def test_distance_threshold_gap_cached(self, small_ordered_domain):
        g = Policy.distance_threshold(small_ordered_domain, 3).graph
        assert g.max_edge_index_gap() == 3
        assert g._memo["max_edge_index_gap"] == 3
        assert g.max_edge_index_gap() == 3

    def test_partition_gap_vectorized_matches_blocks(self, small_ordered_domain):
        part = Partition.from_blocks(
            small_ordered_domain, [[0, 9], [1, 2, 3], [4], [5, 6, 7, 8]]
        )
        g = Policy.partitioned(part).graph
        assert g.max_edge_index_gap() == 9

    def test_large_integer_values_do_not_collide(self):
        # float64 coercion would make 2^54 and 2^54 - 1 indistinguishable
        a = Attribute("v", (0, 2**54, 2**54 + 1))
        b = Attribute("v", (0, 2**54 - 1, 2**54 + 1))
        assert a.fingerprint() != b.fingerprint()

    def test_mask_shape_errors_are_not_swallowed(self, small_ordered_domain):
        # the conservative EdgeScanRefused fallback must not mask caller bugs
        other = Domain.integers("w", 8)
        q = CountQuery.from_mask(other, np.arange(8) < 4)
        with pytest.raises(ValueError, match="mask shape"):
            count_query_sensitivity(Policy.line(small_ordered_domain), q)

    def test_fingerprints_distinguish_structure(self, small_ordered_domain):
        d = small_ordered_domain
        assert (
            Policy.line(d).graph.fingerprint()
            == Policy.line(Domain.integers("v", 10)).graph.fingerprint()
        )
        assert (
            Policy.line(d).graph.fingerprint()
            != Policy.differential_privacy(d).graph.fingerprint()
        )
        assert (
            Policy.distance_threshold(d, 2).graph.fingerprint()
            != Policy.distance_threshold(d, 3).graph.fingerprint()
        )
        assert (
            ExplicitGraph(d, [(0, 1)]).fingerprint()
            != ExplicitGraph(d, [(0, 2)]).fingerprint()
        )
