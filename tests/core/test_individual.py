"""Tests for per-individual secrets (the Section 3.1 heterogeneity
extension), including Theorem 4.3's parallel composition with genuinely
per-group constraints."""

import math

import numpy as np
import pytest

from repro import Database, Domain
from repro.core.graphs import (
    DistanceThresholdGraph,
    EdgelessGraph,
    FullDomainGraph,
    LineGraph,
)
from repro.core.individual import (
    IndividualPolicy,
    IndividualRandomizedResponse,
    constraint_affects_group,
    supports_parallel_composition_individual,
)
from repro.core.queries import CountQuery


@pytest.fixture
def domain():
    return Domain.integers("v", 4)


@pytest.fixture
def policy(domain):
    """Three individuals: full secrets, line secrets, agnostic."""
    return IndividualPolicy(
        domain,
        FullDomainGraph(domain),
        overrides={1: LineGraph(domain)},
        agnostic=[2],
    )


class TestEdgelessGraph:
    def test_no_edges(self, domain):
        g = EdgelessGraph(domain)
        assert not g.has_any_edge()
        assert not g.has_edge(0, 1)
        assert list(g.neighbors_of(0)) == []
        assert g.graph_distance(0, 1) == math.inf
        assert g.max_edge_l1() == 0.0
        assert g.max_edge_index_gap() == 0


class TestIndividualPolicy:
    def test_graph_for(self, policy, domain):
        assert isinstance(policy.graph_for(0), FullDomainGraph)
        assert isinstance(policy.graph_for(1), LineGraph)
        assert isinstance(policy.graph_for(2), EdgelessGraph)
        assert isinstance(policy.graph_for(99), FullDomainGraph)  # default

    def test_validation(self, domain):
        other = Domain.integers("w", 3)
        with pytest.raises(ValueError):
            IndividualPolicy(domain, FullDomainGraph(other))
        with pytest.raises(ValueError):
            IndividualPolicy(
                domain,
                FullDomainGraph(domain),
                overrides={0: LineGraph(domain)},
                agnostic=[0],
            )

    def test_neighbor_semantics(self, policy, domain):
        db = Database.from_indices(domain, [0, 0, 0])
        # individual 0: full secrets -> any change is a neighbor
        assert policy.are_neighbors(db, db.replace(0, 3))
        # individual 1: line secrets -> only adjacent moves
        assert policy.are_neighbors(db, db.replace(1, 1))
        assert not policy.are_neighbors(db, db.replace(1, 3))
        # individual 2: agnostic -> nothing is protected
        assert not policy.are_neighbors(db, db.replace(2, 1))

    def test_neighbor_generator_counts(self, policy, domain):
        db = Database.from_indices(domain, [0, 0, 0])
        nbrs = list(policy.neighbors(db))
        # id 0: 3 alternatives; id 1: 1 (only value 1 adjacent); id 2: 0
        assert len(nbrs) == 4

    def test_sensitivities_max_over_individuals(self, policy):
        assert policy.histogram_sensitivity(3) == 2.0
        assert policy.cumulative_histogram_sensitivity(3) == 3.0  # full graph
        assert policy.ksum_sensitivity(3) == 2 * 3.0

    def test_all_agnostic_is_free(self, domain):
        p = IndividualPolicy(domain, FullDomainGraph(domain), agnostic=[0, 1])
        assert p.histogram_sensitivity(2) == 0.0
        assert p.ksum_sensitivity(2) == 0.0

    def test_heterogeneous_sensitivity_tightens(self, domain):
        """If the only full-secrets person leaves, sensitivity shrinks."""
        p = IndividualPolicy(
            domain,
            LineGraph(domain),
            overrides={0: FullDomainGraph(domain)},
        )
        assert p.cumulative_histogram_sensitivity(3) == 3.0
        only_line = IndividualPolicy(domain, LineGraph(domain))
        assert only_line.cumulative_histogram_sensitivity(3) == 1.0


class TestIndividualRandomizedResponse:
    def test_agnostic_passes_through(self, policy, domain):
        mech = IndividualRandomizedResponse(policy, 1.0, n=3)
        db = Database.from_indices(domain, [0, 1, 2])
        dist = mech.output_distribution(db)
        # individual 2 is agnostic: output always equals its input
        assert all(o[2] == 2 for o in dist)

    def test_protected_tuples_mix(self, policy, domain):
        mech = IndividualRandomizedResponse(policy, 1.0, n=3)
        db = Database.from_indices(domain, [0, 1, 2])
        dist = mech.output_distribution(db)
        outputs_for_0 = {o[0] for o in dist}
        assert outputs_for_0 == {0, 1, 2, 3}

    def test_per_individual_privacy(self, policy, domain):
        """Exact Definition-4.2-style check over per-individual neighbors."""
        eps = 0.8
        mech = IndividualRandomizedResponse(policy, eps, n=3)
        db = Database.from_indices(domain, [0, 1, 2])
        worst = 0.0
        for nbr in policy.neighbors(db):
            p1 = mech.output_distribution(db)
            p2 = mech.output_distribution(nbr)
            for o, a in p1.items():
                b = p2.get(o, 0.0)
                if a > 0 and b > 0:
                    worst = max(worst, abs(math.log(a / b)))
                elif a > 0 or b > 0:
                    worst = math.inf
        assert worst <= eps + 1e-9

    def test_release_shape_and_determinism(self, policy, domain):
        mech = IndividualRandomizedResponse(policy, 2.0, n=3)
        db = Database.from_indices(domain, [0, 1, 2])
        a = mech.release(db, rng=5)
        b = mech.release(db, rng=5)
        assert a == b
        assert a[2] == 2  # agnostic passthrough

    def test_size_validation(self, policy, domain):
        mech = IndividualRandomizedResponse(policy, 1.0, n=3)
        with pytest.raises(ValueError):
            mech.release(Database.from_indices(domain, [0]), rng=0)
        with pytest.raises(ValueError):
            IndividualRandomizedResponse(policy, 0.0, n=3)


class TestParallelCompositionTheorem43:
    def test_constraint_affecting_one_group_only(self, domain):
        """The heterogeneous case where Theorem 4.3 has real bite: the
        constraint's critical pairs touch only group A's secrets."""
        # group A (ids 0,1): full secrets; group B (ids 2,3): agnostic
        policy = IndividualPolicy(
            domain, FullDomainGraph(domain), agnostic=[2, 3]
        )
        q = CountQuery.from_mask(domain, np.array([True, True, False, False]), "low")
        assert constraint_affects_group(q, policy, [0, 1])
        assert not constraint_affects_group(q, policy, [2, 3])
        assert supports_parallel_composition_individual(
            policy, [[0, 1], [2, 3]], [[q], []]
        )
        # assigning it to group B while it affects group A fails
        assert not supports_parallel_composition_individual(
            policy, [[0, 1], [2, 3]], [[], [q]]
        )

    def test_overlapping_groups_rejected(self, domain):
        policy = IndividualPolicy(domain, FullDomainGraph(domain))
        q = CountQuery.from_mask(domain, np.array([True, False, False, False]))
        assert not supports_parallel_composition_individual(
            policy, [[0, 1], [1, 2]], [[q], []]
        )

    def test_group_count_mismatch(self, domain):
        policy = IndividualPolicy(domain, FullDomainGraph(domain))
        assert not supports_parallel_composition_individual(
            policy, [[0], [1]], [[]]
        )
