"""Tests for repro.core.queries: partitions and query families."""

import numpy as np
import pytest

from repro import (
    Constraint,
    ConstraintSet,
    CountQuery,
    CumulativeHistogramQuery,
    Database,
    Domain,
    HistogramQuery,
    KMeansSumQuery,
    LinearQuery,
    Partition,
    RangeQuery,
)


class TestPartition:
    def test_from_blocks(self, grid_domain):
        blocks = [list(range(6)), list(range(6, 12))]
        p = Partition.from_blocks(grid_domain, blocks)
        assert p.n_blocks == 2
        assert p.block_of(0) == 0 and p.block_of(11) == 1

    def test_from_blocks_requires_cover(self, grid_domain):
        with pytest.raises(ValueError, match="not covered"):
            Partition.from_blocks(grid_domain, [[0, 1]])

    def test_from_blocks_rejects_overlap(self, grid_domain):
        with pytest.raises(ValueError, match="two blocks"):
            Partition.from_blocks(grid_domain, [[0, 1], [1] + list(range(2, 12))])

    def test_trivial_and_singletons(self, grid_domain):
        assert Partition.trivial(grid_domain).n_blocks == 1
        s = Partition.singletons(grid_domain)
        assert s.n_blocks == 12
        assert s.block_sizes().tolist() == [1] * 12

    def test_uniform_grid(self):
        d = Domain.grid([4, 4])
        p = Partition.uniform_grid(d, [2, 2])
        assert p.n_blocks == 4
        # the four corners of one block share a label
        assert p.same_block(d.index_of((0, 0)), d.index_of((1, 1)))
        assert not p.same_block(d.index_of((0, 0)), d.index_of((2, 0)))

    def test_uniform_grid_nondivisible(self):
        d = Domain.grid([5, 3])
        p = Partition.uniform_grid(d, [2, 2])
        assert p.n_blocks == 6  # 3 x 2 blocks

    def test_labels_must_be_contiguous(self, grid_domain):
        labels = np.zeros(12, dtype=np.int64)
        labels[0] = 2  # skips block id 1
        with pytest.raises(ValueError, match="contiguous"):
            Partition(grid_domain, labels)

    def test_refinement(self):
        d = Domain.grid([4, 4])
        fine = Partition.uniform_grid(d, [1, 1])
        coarse = Partition.uniform_grid(d, [2, 2])
        assert fine.is_refinement_of(coarse)
        assert not coarse.is_refinement_of(fine)
        assert coarse.is_refinement_of(coarse)

    def test_block_l1_diameter_exact(self):
        d = Domain.grid([4, 4])
        p = Partition.uniform_grid(d, [2, 2])
        assert p.block_l1_diameter(0) == 2.0
        assert p.max_block_l1_diameter() == 2.0

    def test_block_l1_diameter_bounding_box(self):
        d = Domain.grid([64, 64])
        p = Partition.trivial(d)
        # one 4096-cell block exceeds the exact limit; bounding box is exact
        # for product blocks
        assert p.block_l1_diameter(0, exact_limit=10) == 126.0

    def test_singleton_diameters(self, grid_domain):
        p = Partition.singletons(grid_domain)
        assert p.max_block_l1_diameter() == 0.0


class TestHistogramQuery:
    def test_complete(self, small_ordered_domain):
        db = Database.from_indices(small_ordered_domain, [0, 0, 9])
        q = HistogramQuery(small_ordered_domain)
        out = q(db)
        assert out.shape == (10,)
        assert out[0] == 2

    def test_partitioned(self):
        d = Domain.grid([4, 4])
        p = Partition.uniform_grid(d, [2, 2])
        db = Database.from_values(d, [(0, 0), (1, 1), (3, 3)])
        q = HistogramQuery(d, p)
        assert q.output_dim == 4
        assert q(db).tolist() == [2.0, 0.0, 0.0, 1.0]

    def test_domain_mismatch(self, small_ordered_domain, grid_domain):
        db = Database.from_indices(grid_domain, [0])
        q = HistogramQuery(small_ordered_domain)
        with pytest.raises(ValueError):
            q(db)


class TestCumulativeAndRange:
    def test_cumulative(self, small_ordered_domain):
        db = Database.from_indices(small_ordered_domain, [0, 5, 5])
        q = CumulativeHistogramQuery(small_ordered_domain)
        out = q(db)
        assert out[4] == 1 and out[5] == 3 and out[-1] == 3

    def test_range(self, small_ordered_domain):
        db = Database.from_indices(small_ordered_domain, [2, 3, 4])
        q = RangeQuery(small_ordered_domain, 3, 9)
        assert q(db)[0] == 2
        with pytest.raises(ValueError):
            RangeQuery(small_ordered_domain, 5, 3)

    def test_cumulative_requires_ordered(self, grid_domain):
        with pytest.raises(TypeError):
            CumulativeHistogramQuery(grid_domain)


class TestLinearQuery:
    def test_weighted_sum(self):
        d = Domain.ordered("x", [0.0, 1.0, 2.0])
        db = Database.from_values(d, [0.0, 2.0])
        q = LinearQuery(d, [1.0, 0.5])
        assert q(db)[0] == pytest.approx(1.0)

    def test_length_mismatch(self):
        d = Domain.ordered("x", [0.0, 1.0])
        db = Database.from_values(d, [0.0])
        q = LinearQuery(d, [1.0, 1.0])
        with pytest.raises(ValueError):
            q(db)

    def test_requires_numeric(self):
        d = Domain.ordered("x", ["a", "b"])
        with pytest.raises(TypeError):
            LinearQuery(d, [1.0])


class TestKMeansSumQuery:
    def test_sums(self, grid_domain):
        db = Database.from_values(grid_domain, [(0, 0), (0, 1), (3, 2)])
        assign = lambda pts: (pts[:, 0] > 1).astype(np.int64)
        q = KMeansSumQuery(grid_domain, assign, k=2)
        out = q(db).reshape(2, 2)
        assert out[0].tolist() == [0.0, 1.0]
        assert out[1].tolist() == [3.0, 2.0]


class TestCountQuery:
    def test_predicate_and_mask(self, abc_domain):
        q = CountQuery(abc_domain, lambda v: v[0] == "a1", "A1=a1")
        assert int(q.mask.sum()) == 6
        db = Database.from_values(abc_domain, [("a1", "b1", "c1"), ("a2", "b1", "c1")])
        assert q(db)[0] == 1

    def test_from_mask(self, small_ordered_domain):
        mask = np.zeros(10, dtype=bool)
        mask[3:] = True
        q = CountQuery.from_mask(small_ordered_domain, mask, "tail")
        assert q.holds_at(5)
        assert not q.holds_at(0)

    def test_from_mask_validates_shape(self, small_ordered_domain):
        with pytest.raises(ValueError):
            CountQuery.from_mask(small_ordered_domain, np.zeros(5, dtype=bool))

    def test_lift_lower(self, small_ordered_domain):
        mask = np.zeros(10, dtype=bool)
        mask[5:] = True
        q = CountQuery.from_mask(small_ordered_domain, mask)
        assert q.lifted_by(0, 7)
        assert q.lowered_by(7, 0)
        assert not q.lifted_by(6, 7)
        assert not q.lowered_by(0, 1)


class TestConstraints:
    def test_constraint_satisfaction(self, small_ordered_domain):
        mask = np.zeros(10, dtype=bool)
        mask[0] = True
        q = CountQuery.from_mask(small_ordered_domain, mask)
        db = Database.from_indices(small_ordered_domain, [0, 0, 5])
        assert Constraint(q, 2).satisfied_by(db)
        assert not Constraint(q, 1).satisfied_by(db)

    def test_constraint_set_from_database(self, small_ordered_domain):
        db = Database.from_indices(small_ordered_domain, [0, 0, 5])
        q1 = CountQuery.from_mask(
            small_ordered_domain, np.arange(10) < 3, "low"
        )
        q2 = CountQuery.from_mask(
            small_ordered_domain, np.arange(10) >= 3, "high"
        )
        cs = ConstraintSet.from_database([q1, q2], db)
        assert cs.satisfied_by(db)
        assert not cs.satisfied_by(db.replace(0, 9))
        assert len(cs) == 2
        assert [c.query.name for c in cs] == ["low", "high"]

    def test_mixed_domains_rejected(self, small_ordered_domain, tiny_domain):
        q1 = CountQuery.from_mask(small_ordered_domain, np.zeros(10, dtype=bool))
        q2 = CountQuery.from_mask(tiny_domain, np.zeros(3, dtype=bool))
        with pytest.raises(ValueError):
            ConstraintSet([Constraint(q1, 0), Constraint(q2, 0)])


class TestIntArrayOverflow:
    def test_uint64_range_values_raise_instead_of_wrapping(self):
        from repro.core.queries import _int_array
        from repro.core.specbase import SpecError

        # 2**63 parses as uint64; astype(int64) would wrap negative
        with pytest.raises(SpecError, match="out of 64-bit integer range"):
            _int_array([2**63], "payload")
        with pytest.raises(SpecError, match="out of 64-bit integer range"):
            _int_array([1, 2**64 - 1], "payload")
        # boundary value that does fit stays exact
        assert _int_array([2**63 - 1], "payload")[0] == 2**63 - 1
