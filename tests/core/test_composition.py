"""Tests for composition (Theorems 4.1-4.3) and the accountant."""

import numpy as np
import pytest

from repro import (
    Constraint,
    ConstraintSet,
    CountQuery,
    Database,
    Domain,
    ExplicitGraph,
    Partition,
    Policy,
    PrivacyAccountant,
)
from repro.core.composition import (
    constraint_is_critical,
    critical_edges,
    parallel_epsilon,
    sequential_epsilon,
    supports_parallel_composition,
)


class TestSequential:
    def test_sum(self):
        assert sequential_epsilon([0.1, 0.2, 0.3]) == pytest.approx(0.6)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            sequential_epsilon([0.1, -0.2])

    def test_empty(self):
        assert sequential_epsilon([]) == 0.0


class TestCriticalEdges:
    def test_crossing_query(self, small_ordered_domain):
        policy = Policy.line(small_ordered_domain)
        q = CountQuery.from_mask(small_ordered_domain, np.arange(10) < 5)
        edges = critical_edges(q, policy.graph)
        assert edges == {(4, 5)}
        assert constraint_is_critical(q, policy.graph)

    def test_component_aligned_query_not_critical(self):
        # the paper's closing Section 4.1 example
        d = Domain.integers("v", 10)
        labels = np.array([0] * 5 + [1] * 5)
        graph = Policy.partitioned(Partition(d, labels)).graph
        q_s = CountQuery.from_mask(d, np.arange(10) < 5, "q_S")
        q_rest = CountQuery.from_mask(d, np.arange(10) >= 5, "q_T\\S")
        assert not constraint_is_critical(q_s, graph)
        assert not constraint_is_critical(q_rest, graph)

    def test_full_domain_fast_path(self, small_ordered_domain):
        graph = Policy.differential_privacy(small_ordered_domain).graph
        crossing = CountQuery.from_mask(small_ordered_domain, np.arange(10) < 3)
        constant = CountQuery.from_mask(small_ordered_domain, np.ones(10, dtype=bool))
        assert constraint_is_critical(crossing, graph)
        assert not constraint_is_critical(constant, graph)

    def test_explicit_graph(self, tiny_domain):
        graph = ExplicitGraph(tiny_domain, [(0, 1)])
        q = CountQuery.from_mask(tiny_domain, np.array([True, True, False]))
        assert not constraint_is_critical(q, graph)
        assert critical_edges(q, graph) == frozenset()


class TestParallelComposition:
    def test_unconstrained_disjoint_groups(self, small_ordered_domain):
        policy = Policy.differential_privacy(small_ordered_domain)
        assert supports_parallel_composition(policy, [[0, 1], [2, 3]])
        assert parallel_epsilon(policy, [0.3, 0.7], [[0, 1], [2, 3]]) == 0.7

    def test_overlapping_groups_rejected(self, small_ordered_domain):
        policy = Policy.differential_privacy(small_ordered_domain)
        assert not supports_parallel_composition(policy, [[0, 1], [1, 2]])
        with pytest.raises(ValueError):
            parallel_epsilon(policy, [0.3, 0.7], [[0, 1], [1, 2]])

    def test_noncritical_constraints_compose(self):
        # two component counts, partition policy: crit(q) = 0, so parallel
        # composition is free (the paper's example)
        d = Domain.integers("v", 10)
        labels = np.array([0] * 5 + [1] * 5)
        base = Database.from_indices(d, [0, 1, 5, 6])
        q_s = CountQuery.from_mask(d, np.arange(10) < 5, "q_S")
        q_rest = CountQuery.from_mask(d, np.arange(10) >= 5, "q_rest")
        cs = ConstraintSet.from_database([q_s, q_rest], base)
        policy = Policy.partitioned(Partition(d, labels), cs)
        assert supports_parallel_composition(policy, [[0, 1], [2, 3]])
        assert parallel_epsilon(policy, [0.2, 0.5], [[0, 1], [2, 3]]) == 0.5

    def test_critical_constraints_block_parallel(self, small_ordered_domain):
        # the paper's male/female marginal example: a critical constraint
        # defeats parallel composition under uniform secrets
        base = Database.from_indices(small_ordered_domain, [0, 1, 5, 6])
        q = CountQuery.from_mask(small_ordered_domain, np.arange(10) < 5, "low")
        cs = ConstraintSet.from_database([q], base)
        policy = Policy.full_domain(small_ordered_domain, cs)
        assert not supports_parallel_composition(policy, [[0, 1], [2, 3]])

    def test_constraint_group_assignment_validation(self, small_ordered_domain):
        base = Database.from_indices(small_ordered_domain, [0, 1, 5, 6])
        q = CountQuery.from_mask(small_ordered_domain, np.arange(10) < 5, "low")
        cs = ConstraintSet.from_database([q], base)
        policy = Policy.full_domain(small_ordered_domain, cs)
        # assignment must cover exactly the policy's queries
        assert not supports_parallel_composition(policy, [[0], [1]], [[], []])
        # critical constraint assigned to group 0 while group 1 is non-empty
        assert not supports_parallel_composition(
            policy, [[0], [1]], [[cs.queries[0]], []]
        )
        # with the other group empty, the assignment is fine
        assert supports_parallel_composition(policy, [[0], []], [[cs.queries[0]], []])

    def test_epsilon_count_mismatch(self, small_ordered_domain):
        policy = Policy.differential_privacy(small_ordered_domain)
        with pytest.raises(ValueError):
            parallel_epsilon(policy, [0.1], [[0], [1]])


class TestAccountant:
    def test_sequential_total(self, small_ordered_domain):
        acc = PrivacyAccountant(Policy.differential_privacy(small_ordered_domain))
        acc.spend(0.1, "histogram")
        acc.spend(0.2, "kmeans")
        assert acc.sequential_total() == pytest.approx(0.3)
        assert acc.spends == [("histogram", 0.1), ("kmeans", 0.2)]

    def test_budget_enforcement(self, small_ordered_domain):
        acc = PrivacyAccountant(Policy.differential_privacy(small_ordered_domain), budget=0.5)
        acc.spend(0.4)
        assert acc.remaining() == pytest.approx(0.1)
        with pytest.raises(RuntimeError, match="budget exhausted"):
            acc.spend(0.2)

    def test_invalid_budget(self, small_ordered_domain):
        with pytest.raises(ValueError):
            PrivacyAccountant(Policy.differential_privacy(small_ordered_domain), budget=0.0)

    def test_negative_spend_rejected(self, small_ordered_domain):
        acc = PrivacyAccountant(Policy.differential_privacy(small_ordered_domain))
        with pytest.raises(ValueError):
            acc.spend(-0.1)

    def test_parallel_aware_total(self, small_ordered_domain):
        acc = PrivacyAccountant(Policy.differential_privacy(small_ordered_domain))
        acc.spend(0.1, "global")
        acc.spend(0.3, "groupA", ids=[0, 1])
        acc.spend(0.2, "groupB", ids=[2, 3])
        assert acc.parallel_aware_total() == pytest.approx(0.1 + 0.3)
        assert acc.sequential_total() == pytest.approx(0.6)

    def test_parallel_aware_falls_back_on_overlap(self, small_ordered_domain):
        acc = PrivacyAccountant(Policy.differential_privacy(small_ordered_domain))
        acc.spend(0.3, ids=[0, 1])
        acc.spend(0.2, ids=[1, 2])
        assert acc.parallel_aware_total() == pytest.approx(0.5)

    def test_remaining_requires_budget(self, small_ordered_domain):
        acc = PrivacyAccountant(Policy.differential_privacy(small_ordered_domain))
        with pytest.raises(ValueError):
            acc.remaining()
