"""Tests for rng plumbing."""

import numpy as np
import pytest

from repro.core.rng import ensure_rng, spawn


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1 << 30, 10)
        b = ensure_rng(42).integers(0, 1 << 30, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(7)), np.random.Generator)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawn:
    def test_children_are_independent_and_deterministic(self):
        a = spawn(ensure_rng(1), 3)
        b = spawn(ensure_rng(1), 3)
        for ga, gb in zip(a, b):
            assert np.array_equal(ga.integers(0, 100, 5), gb.integers(0, 100, 5))
        draws = [g.integers(0, 1 << 30) for g in spawn(ensure_rng(2), 4)]
        assert len(set(int(d) for d in draws)) == 4

    def test_repeated_spawn_differs(self):
        g = ensure_rng(3)
        first = spawn(g, 2)
        second = spawn(g, 2)
        assert not np.array_equal(
            first[0].integers(0, 1 << 30, 4), second[0].integers(0, 1 << 30, 4)
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)
