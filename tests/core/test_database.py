"""Tests for repro.core.database."""

import numpy as np
import pytest

from repro import Database, Domain


@pytest.fixture
def db(small_ordered_domain):
    return Database.from_indices(small_ordered_domain, [0, 0, 3, 5, 9, 9, 9])


class TestConstruction:
    def test_from_indices(self, db):
        assert db.n == 7
        assert db[2] == 3

    def test_from_values(self, grid_domain):
        d = Database.from_values(grid_domain, [(0, 0), (3, 2)])
        assert d.n == 2
        assert d.value(1) == (3, 2)

    def test_from_values_bare_1d(self, small_ordered_domain):
        d = Database.from_values(small_ordered_domain, [1, 2, 3])
        assert d[0] == 1

    def test_empty(self, small_ordered_domain):
        d = Database.empty(small_ordered_domain)
        assert d.n == 0
        assert d.histogram().sum() == 0

    def test_out_of_range_rejected(self, small_ordered_domain):
        with pytest.raises(ValueError):
            Database.from_indices(small_ordered_domain, [0, 10])
        with pytest.raises(ValueError):
            Database.from_indices(small_ordered_domain, [-1])

    def test_2d_indices_rejected(self, small_ordered_domain):
        with pytest.raises(ValueError):
            Database(small_ordered_domain, np.zeros((2, 2), dtype=np.int64))

    def test_indices_read_only(self, db):
        with pytest.raises(ValueError):
            db.indices[0] = 5


class TestUpdates:
    def test_replace(self, db):
        d2 = db.replace(0, 7)
        assert d2[0] == 7
        assert db[0] == 0  # original untouched

    def test_replace_validates(self, db):
        with pytest.raises(ValueError):
            db.replace(0, 10)

    def test_replace_many(self, db):
        d2 = db.replace_many({0: 1, 6: 2})
        assert d2[0] == 1 and d2[6] == 2
        assert db[6] == 9

    def test_restrict(self, db):
        sub = db.restrict([0, 2, 4])
        assert sub.n == 3
        assert list(sub.indices) == [0, 3, 9]

    def test_subsample(self, db, rng):
        sub = db.subsample(0.5, rng)
        assert sub.n == 4  # round(3.5) = 4
        with pytest.raises(ValueError):
            db.subsample(0.0, rng)

    def test_subsample_full(self, db, rng):
        assert db.subsample(1.0, rng).n == db.n


class TestAggregates:
    def test_histogram(self, db):
        h = db.histogram()
        assert h.sum() == 7
        assert h[0] == 2 and h[9] == 3

    def test_sparse_histogram(self, db):
        s = db.sparse_histogram()
        assert s == {0: 2, 3: 1, 5: 1, 9: 3}

    def test_cumulative(self, db):
        c = db.cumulative_histogram()
        assert c[-1] == 7
        assert c[4] == 3  # two zeros + one three
        assert np.all(np.diff(c) >= 0)

    def test_cumulative_requires_ordered(self, grid_domain):
        d = Database.from_indices(grid_domain, [0, 1])
        with pytest.raises(TypeError):
            d.cumulative_histogram()

    def test_range_count(self, db):
        assert db.range_count(0, 9) == 7
        assert db.range_count(3, 5) == 2
        assert db.range_count(1, 2) == 0
        with pytest.raises(ValueError):
            db.range_count(5, 3)

    def test_points(self, grid_domain):
        d = Database.from_values(grid_domain, [(1, 2), (3, 0)])
        pts = d.points()
        assert pts.tolist() == [[1.0, 2.0], [3.0, 0.0]]

    def test_histogram_guard_for_huge_domains(self):
        huge = Domain.grid([2048, 2048, 64])  # > 2^24 cells
        d = Database.from_indices(huge, [0, 1])
        with pytest.raises(ValueError, match="dense"):
            d.histogram()
        assert d.sparse_histogram() == {0: 1, 1: 1}


class TestEquality:
    def test_eq_and_hash(self, small_ordered_domain):
        d1 = Database.from_indices(small_ordered_domain, [1, 2])
        d2 = Database.from_indices(small_ordered_domain, [1, 2])
        d3 = Database.from_indices(small_ordered_domain, [2, 1])
        assert d1 == d2 and hash(d1) == hash(d2)
        assert d1 != d3

    def test_iter(self, db):
        assert list(db) == [0, 0, 3, 5, 9, 9, 9]
