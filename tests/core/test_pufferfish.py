"""Tests for the Pufferfish-Blowfish equivalence (Theorems 4.4/4.5)."""

import numpy as np
import pytest

from repro import Attribute, Database, Domain, Policy
from repro.constraints import MarginalConstraintSet
from repro.core.definition import realized_epsilon
from repro.core.pufferfish import (
    point_mass_prior,
    product_prior_worlds,
    pufferfish_realized_epsilon,
)
from repro.mechanisms import GraphRandomizedResponse


@pytest.fixture
def rr_setup():
    domain = Domain.integers("v", 3)
    policy = Policy.line(domain)
    mech = GraphRandomizedResponse(policy, 0.8)
    return domain, policy, mech


class TestWorldEnumeration:
    def test_unconstrained_product(self, rr_setup):
        domain, policy, _ = rr_setup
        prior = np.array([[0.5, 0.5, 0.0], [0.0, 0.0, 1.0]])
        worlds = product_prior_worlds(policy, prior)
        assert len(worlds) == 2
        assert sum(p for _, p in worlds) == pytest.approx(1.0)

    def test_constraint_conditioning(self):
        domain = Domain(
            [Attribute("A1", ["a1", "a2"]), Attribute("A2", ["b1", "b2"])]
        )
        db = Database.from_values(domain, [("a1", "b1"), ("a2", "b1")])
        cs = MarginalConstraintSet(domain, [["A1"]], db)
        policy = Policy.full_domain(domain, cs)
        # uniform prior over each tuple: conditioning keeps only worlds with
        # one a1 and one a2
        prior = np.full((2, 4), 0.25)
        worlds = product_prior_worlds(policy, prior)
        assert all(policy.admits(w) for w, _ in worlds)
        assert len(worlds) == 8  # 2 choices of who is a1 x 2 x 2 b-values
        assert sum(p for _, p in worlds) == pytest.approx(1.0)

    def test_zero_mass_prior_rejected(self, rr_setup):
        domain, _, _ = rr_setup
        db = Database.from_indices(domain, [0, 1])
        cs_domain = Domain.integers("v", 3)
        from repro import Constraint, ConstraintSet, CountQuery

        q = CountQuery.from_mask(cs_domain, np.array([True, False, False]))
        policy = Policy.full_domain(cs_domain, ConstraintSet([Constraint(q, 2)]))
        prior = np.zeros((2, 3))
        prior[:, 2] = 1.0  # no world has two zeros
        with pytest.raises(ValueError, match="no mass"):
            product_prior_worlds(policy, prior)

    def test_shape_validation(self, rr_setup):
        _, policy, _ = rr_setup
        with pytest.raises(ValueError):
            product_prior_worlds(policy, np.ones((2, 5)) / 5)


class TestTheorem44:
    """Unconstrained: Pufferfish over product priors == Blowfish."""

    def test_point_mass_priors_attain_blowfish_epsilon(self, rr_setup):
        domain, policy, mech = rr_setup
        n = 2
        blowfish_eps = realized_epsilon(mech, policy, n)
        worst = 0.0
        for i in range(n):
            for pair in policy.graph.edges():
                for other_value in range(domain.size):
                    prior = point_mass_prior(
                        domain.size, n, [other_value] * n, i, pair
                    )
                    worst = max(
                        worst, pufferfish_realized_epsilon(mech, policy, prior)
                    )
        assert worst == pytest.approx(blowfish_eps, abs=1e-9)

    def test_mixed_priors_never_exceed_blowfish(self, rr_setup, rng):
        domain, policy, mech = rr_setup
        n = 2
        blowfish_eps = realized_epsilon(mech, policy, n)
        for _ in range(10):
            prior = rng.dirichlet(np.ones(domain.size), size=n)
            puffer = pufferfish_realized_epsilon(mech, policy, prior)
            assert puffer <= blowfish_eps + 1e-9

    def test_rr_meets_its_nominal_epsilon_semantically(self, rr_setup, rng):
        """The operational meaning: no product-prior adversary's odds move
        by more than e^0.8."""
        domain, policy, mech = rr_setup
        prior = rng.dirichlet(np.ones(domain.size), size=2)
        assert pufferfish_realized_epsilon(mech, policy, prior) <= 0.8 + 1e-9


class TestTheorem45:
    """Constrained: conditioned-product Pufferfish bounds Blowfish."""

    @pytest.fixture
    def constrained(self):
        domain = Domain(
            [Attribute("A1", ["a1", "a2"]), Attribute("A2", ["b1", "b2"])]
        )
        base = Database.from_values(domain, [("a1", "b1"), ("a2", "b1")])
        cs = MarginalConstraintSet(domain, [["A1"]], base)
        policy = Policy.full_domain(domain, cs)
        mech = GraphRandomizedResponse(policy.without_constraints(), 1.0)
        return domain, policy, mech

    def test_neighbor_pair_prior_recovers_blowfish_ratio(self, constrained):
        """A prior supported exactly on a constrained neighbor pair turns
        the Pufferfish ratio into that pair's Blowfish ratio."""
        domain, policy, mech = constrained
        d1 = Database.from_values(domain, [("a1", "b1"), ("a2", "b1")])
        d2 = Database.from_values(domain, [("a2", "b2"), ("a1", "b2")])
        from repro.core.neighbors import are_neighbors

        assert are_neighbors(policy, d1, d2)
        prior = np.zeros((2, domain.size))
        for j in range(2):
            prior[j, d1[j]] += 0.5
            prior[j, d2[j]] += 0.5
        puffer = pufferfish_realized_epsilon(mech, policy, prior)
        pair_eps = realized_epsilon(mech, policy, 2, pairs=[(d1, d2)])
        assert puffer == pytest.approx(pair_eps, abs=1e-9)

    def test_sup_over_priors_dominates_blowfish(self, constrained, rng):
        """Theorem 4.5 direction: the Pufferfish requirement (sup over
        conditioned priors) is at least as strong as constrained Blowfish —
        exhibited by a family of neighbor-pair priors."""
        domain, policy, mech = constrained
        blowfish_eps = realized_epsilon(mech, policy, 2)
        worst = 0.0
        from repro.core.neighbors import neighbor_pairs

        for d1, d2 in neighbor_pairs(policy, 2):
            prior = np.zeros((2, domain.size))
            for j in range(2):
                prior[j, d1[j]] += 0.5
                prior[j, d2[j]] += 0.5
            worst = max(worst, pufferfish_realized_epsilon(mech, policy, prior))
        assert worst >= blowfish_eps - 1e-9
