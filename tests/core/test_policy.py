"""Tests for repro.core.policy."""

import numpy as np
import pytest

from repro import (
    Constraint,
    ConstraintSet,
    CountQuery,
    Database,
    Domain,
    FullDomainGraph,
    LineGraph,
    Partition,
    Policy,
)


class TestConstructors:
    def test_differential_privacy(self, small_ordered_domain):
        p = Policy.differential_privacy(small_ordered_domain)
        assert p.is_differential_privacy
        assert p.unconstrained
        assert isinstance(p.graph, FullDomainGraph)

    def test_full_domain_alias(self, small_ordered_domain):
        p = Policy.full_domain(small_ordered_domain)
        assert p.is_differential_privacy

    def test_attribute(self, grid_domain):
        p = Policy.attribute(grid_domain)
        assert not p.is_differential_privacy
        assert p.graph.has_edge(0, 1)

    def test_partitioned(self, grid_domain):
        part = Partition.uniform_grid(grid_domain, [2, 3])
        p = Policy.partitioned(part)
        assert p.domain == grid_domain

    def test_distance_threshold(self, small_ordered_domain):
        p = Policy.distance_threshold(small_ordered_domain, 2.0)
        assert p.graph.has_edge(0, 2)
        assert not p.graph.has_edge(0, 3)

    def test_line(self, small_ordered_domain):
        p = Policy.line(small_ordered_domain)
        assert isinstance(p.graph, LineGraph)

    def test_graph_domain_mismatch(self, small_ordered_domain, grid_domain):
        with pytest.raises(ValueError):
            Policy(small_ordered_domain, FullDomainGraph(grid_domain))


class TestConstraints:
    @pytest.fixture
    def constrained(self, small_ordered_domain):
        q = CountQuery.from_mask(
            small_ordered_domain, np.arange(10) < 5, "low_half"
        )
        db = Database.from_indices(small_ordered_domain, [0, 1, 7])
        cs = ConstraintSet.from_database([q], db)
        return Policy.full_domain(small_ordered_domain, cs), db

    def test_admits(self, constrained):
        policy, db = constrained
        assert policy.admits(db)
        assert not policy.admits(db.replace(0, 9))  # breaks the count

    def test_admits_checks_domain(self, constrained, grid_domain):
        policy, _ = constrained
        other = Database.from_indices(grid_domain, [0])
        assert not policy.admits(other)

    def test_with_without_constraints(self, constrained):
        policy, _ = constrained
        assert not policy.unconstrained
        assert policy.without_constraints().unconstrained
        assert not policy.is_differential_privacy

    def test_empty_constraint_set_is_unconstrained(self, small_ordered_domain):
        p = Policy(small_ordered_domain, FullDomainGraph(small_ordered_domain), ConstraintSet([]))
        assert p.unconstrained

    def test_constraint_domain_mismatch(self, small_ordered_domain, tiny_domain):
        q = CountQuery.from_mask(tiny_domain, np.zeros(3, dtype=bool))
        cs = ConstraintSet([Constraint(q, 0)])
        with pytest.raises(ValueError):
            Policy.full_domain(small_ordered_domain, cs)

    def test_repr(self, constrained, small_ordered_domain):
        policy, _ = constrained
        assert "1 constraints" in repr(policy)
        assert "I_n" in repr(Policy.differential_privacy(small_ordered_domain))
