"""Tests for policy-specific global sensitivity (Definition 5.1, Lemma 6.1).

The analytic calculators are validated against the exact brute-force
evaluation over enumerated neighbor pairs wherever feasible.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CountQuery,
    CumulativeHistogramQuery,
    Database,
    Domain,
    ExplicitGraph,
    HistogramQuery,
    KMeansSumQuery,
    LinearQuery,
    Partition,
    Policy,
    RangeQuery,
)
from repro.core.sensitivity import (
    brute_force_sensitivity,
    count_query_sensitivity,
    cumulative_histogram_sensitivity,
    histogram_sensitivity,
    ksum_sensitivity,
    linear_query_sensitivity,
    range_query_sensitivity,
    sensitivity,
)


class TestHistogramSensitivity:
    def test_dp_policy_is_two(self, small_ordered_domain):
        assert histogram_sensitivity(Policy.differential_privacy(small_ordered_domain)) == 2.0

    def test_edgeless_graph_is_zero(self, grid_domain):
        p = Policy.partitioned(Partition.singletons(grid_domain))
        assert histogram_sensitivity(p) == 0.0

    def test_partition_histogram_free_under_partition_policy(self):
        # Section 5: under G^P the histogram of P (or coarser) costs nothing
        d = Domain.grid([4, 4])
        fine = Partition.uniform_grid(d, [2, 2])
        coarse = Partition.uniform_grid(d, [4, 2])
        policy = Policy.partitioned(fine)
        assert histogram_sensitivity(policy, fine) == 0.0
        assert histogram_sensitivity(policy, coarse) == 0.0
        finer = Partition.singletons(d)
        assert histogram_sensitivity(policy, finer) == 2.0

    def test_brute_force_agreement_dp(self, tiny_domain):
        policy = Policy.differential_privacy(tiny_domain)
        bf = brute_force_sensitivity(lambda db: db.histogram(), policy, 2)
        assert bf == histogram_sensitivity(policy) == 2.0

    def test_brute_force_agreement_line(self, tiny_domain):
        policy = Policy.line(tiny_domain)
        bf = brute_force_sensitivity(lambda db: db.histogram(), policy, 2)
        assert bf == histogram_sensitivity(policy) == 2.0

    def test_requires_unconstrained(self, tiny_domain):
        from repro import Constraint, ConstraintSet

        q = CountQuery.from_mask(tiny_domain, np.array([True, False, False]))
        p = Policy.full_domain(tiny_domain, ConstraintSet([Constraint(q, 1)]))
        with pytest.raises(ValueError, match="unconstrained"):
            histogram_sensitivity(p)


class TestCumulativeSensitivity:
    def test_known_values(self):
        d = Domain.integers("v", 10)
        assert cumulative_histogram_sensitivity(Policy.line(d)) == 1.0
        assert cumulative_histogram_sensitivity(Policy.differential_privacy(d)) == 9.0
        assert cumulative_histogram_sensitivity(Policy.distance_threshold(d, 3)) == 3.0

    @pytest.mark.parametrize("theta", [1, 2, 4])
    def test_brute_force_agreement(self, theta):
        d = Domain.integers("v", 5)
        policy = Policy.distance_threshold(d, theta)
        bf = brute_force_sensitivity(lambda db: db.cumulative_histogram(), policy, 2)
        assert bf == cumulative_histogram_sensitivity(policy)

    def test_requires_ordered(self, grid_domain):
        with pytest.raises(TypeError):
            cumulative_histogram_sensitivity(Policy.differential_privacy(grid_domain))


class TestKsumSensitivity:
    """Lemma 6.1's table of q_sum sensitivities."""

    def test_full_domain(self, grid_domain):
        assert ksum_sensitivity(Policy.differential_privacy(grid_domain)) == 2 * 5.0

    def test_attribute(self, grid_domain):
        assert ksum_sensitivity(Policy.attribute(grid_domain)) == 2 * 3.0

    def test_distance_threshold(self, grid_domain):
        assert ksum_sensitivity(Policy.distance_threshold(grid_domain, 2.0)) == 4.0

    def test_partition(self):
        d = Domain.grid([4, 4])
        p = Policy.partitioned(Partition.uniform_grid(d, [2, 2]))
        assert ksum_sensitivity(p) == 2 * 2.0

    def test_singleton_partition_is_zero(self, grid_domain):
        p = Policy.partitioned(Partition.singletons(grid_domain))
        assert ksum_sensitivity(p) == 0.0

    def test_ordering_of_policies(self, grid_domain):
        # Lemma 6.1: all weaker policies sit below the full domain
        full = ksum_sensitivity(Policy.differential_privacy(grid_domain))
        assert ksum_sensitivity(Policy.attribute(grid_domain)) < full
        assert ksum_sensitivity(Policy.distance_threshold(grid_domain, 1.0)) < full


class TestLinearAndRange:
    def test_linear_full_domain(self):
        d = Domain.ordered("x", [0.0, 1.0, 2.0, 3.0])
        p = Policy.differential_privacy(d)
        # (b - a) * max w
        assert linear_query_sensitivity(p, [0.5, 2.0, 1.0]) == 3.0 * 2.0

    def test_linear_threshold(self):
        d = Domain.ordered("x", [0.0, 1.0, 2.0, 3.0])
        p = Policy.distance_threshold(d, 1.0)
        assert linear_query_sensitivity(p, [0.5, 2.0]) == 1.0 * 2.0

    def test_linear_empty_weights(self):
        d = Domain.ordered("x", [0.0, 1.0])
        assert linear_query_sensitivity(Policy.differential_privacy(d), []) == 0.0

    def test_linear_brute_force(self):
        d = Domain.ordered("x", [0.0, 1.0, 2.0])
        p = Policy.distance_threshold(d, 1.0)
        w = [1.5, 0.5]
        q = LinearQuery(d, w)
        bf = brute_force_sensitivity(q, p, 2)
        assert bf == linear_query_sensitivity(p, w)

    def test_range_proper_interval(self, small_ordered_domain):
        p = Policy.line(small_ordered_domain)
        assert range_query_sensitivity(p, 2, 5) == 1.0

    def test_range_full_domain_interval_is_free(self, small_ordered_domain):
        p = Policy.differential_privacy(small_ordered_domain)
        assert range_query_sensitivity(p, 0, 9) == 0.0

    def test_range_partition_respecting(self):
        d = Domain.integers("v", 10)
        labels = np.array([0] * 5 + [1] * 5)
        p = Policy.partitioned(Partition(d, labels))
        # [0,4] aligns with the block boundary: no edge crosses it
        assert range_query_sensitivity(p, 0, 4) == 0.0
        assert range_query_sensitivity(p, 0, 3) == 1.0

    def test_range_brute_force(self, tiny_domain):
        p = Policy.line(tiny_domain)
        q = RangeQuery(tiny_domain, 0, 1)
        assert brute_force_sensitivity(q, p, 2) == range_query_sensitivity(p, 0, 1)


class TestCountQuerySensitivity:
    def test_full_domain(self, small_ordered_domain):
        p = Policy.differential_privacy(small_ordered_domain)
        q = CountQuery.from_mask(small_ordered_domain, np.arange(10) < 5)
        assert count_query_sensitivity(p, q) == 1.0

    def test_constant_query_is_free(self, small_ordered_domain):
        p = Policy.differential_privacy(small_ordered_domain)
        q = CountQuery.from_mask(small_ordered_domain, np.ones(10, dtype=bool))
        assert count_query_sensitivity(p, q) == 0.0

    def test_component_aligned_query_is_free(self):
        # the Section 4.1 example: counts of whole components cost nothing
        d = Domain.integers("v", 10)
        labels = np.array([0] * 5 + [1] * 5)
        p = Policy.partitioned(Partition(d, labels))
        q = CountQuery.from_mask(d, np.arange(10) < 5)
        assert count_query_sensitivity(p, q) == 0.0

    def test_explicit_graph(self, tiny_domain):
        p = Policy(tiny_domain, ExplicitGraph(tiny_domain, [(0, 1)]))
        q = CountQuery.from_mask(tiny_domain, np.array([True, True, False]))
        # the only edge does not cross the support boundary
        assert count_query_sensitivity(p, q) == 0.0


class TestDispatch:
    def test_sensitivity_dispatches(self, small_ordered_domain):
        p = Policy.line(small_ordered_domain)
        assert sensitivity(HistogramQuery(small_ordered_domain), p) == 2.0
        assert sensitivity(CumulativeHistogramQuery(small_ordered_domain), p) == 1.0
        assert sensitivity(RangeQuery(small_ordered_domain, 1, 3), p) == 1.0

    def test_unknown_query_type(self, small_ordered_domain):
        p = Policy.line(small_ordered_domain)

        class Weird:
            pass

        with pytest.raises(TypeError):
            sensitivity(Weird(), p)


class TestBruteForcePropertyOnRandomGraphs:
    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_histogram_sensitivity_random_explicit_graphs(self, data):
        size = data.draw(st.integers(min_value=2, max_value=4))
        domain = Domain.integers("v", size)
        possible = [(i, j) for i in range(size) for j in range(i + 1, size)]
        edges = data.draw(st.sets(st.sampled_from(possible), min_size=0, max_size=len(possible)))
        policy = Policy(domain, ExplicitGraph(domain, list(edges)))
        bf = brute_force_sensitivity(lambda db: db.histogram(), policy, 2)
        assert bf == histogram_sensitivity(policy)

    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_cumulative_sensitivity_random_explicit_graphs(self, data):
        size = data.draw(st.integers(min_value=2, max_value=4))
        domain = Domain.integers("v", size)
        possible = [(i, j) for i in range(size) for j in range(i + 1, size)]
        edges = data.draw(st.sets(st.sampled_from(possible), min_size=1, max_size=len(possible)))
        policy = Policy(domain, ExplicitGraph(domain, list(edges)))
        bf = brute_force_sensitivity(lambda db: db.cumulative_histogram(), policy, 2)
        assert bf == cumulative_histogram_sensitivity(policy)
