"""Empirical verification of Theorems 4.1/4.2 on actual mechanisms.

The composition *theorems* are about mechanisms, not arithmetic; these
tests build composed mechanisms with enumerable output distributions and
measure their realized epsilon exactly against the theorem's guarantee.
"""

import math

import numpy as np
import pytest

from repro import Database, Domain, Policy
from repro.core.definition import realized_epsilon
from repro.core.neighbors import neighbor_pairs
from repro.mechanisms import GraphRandomizedResponse


class _SequentialPair:
    """Output both M1(D) and M2(D) — the Theorem 4.1 composition."""

    def __init__(self, m1, m2):
        self.m1 = m1
        self.m2 = m2

    def output_distribution(self, db):
        out = {}
        for o1, p1 in self.m1.output_distribution(db).items():
            for o2, p2 in self.m2.output_distribution(db).items():
                out[(o1, o2)] = p1 * p2
        return out


class _RestrictedMechanism:
    """Run a base mechanism on ``D ∩ S`` only — Theorem 4.2's building block."""

    def __init__(self, base, ids):
        self.base = base
        self.ids = list(ids)

    def output_distribution(self, db):
        return self.base.output_distribution(db.restrict(self.ids))


class _ParallelPair:
    def __init__(self, m1, m2):
        self.m1 = m1
        self.m2 = m2

    def output_distribution(self, db):
        out = {}
        for o1, p1 in self.m1.output_distribution(db).items():
            for o2, p2 in self.m2.output_distribution(db).items():
                out[(o1, o2)] = p1 * p2
        return out


@pytest.fixture
def setting():
    domain = Domain.integers("v", 3)
    policy = Policy.line(domain)
    return domain, policy


class TestTheorem41Sequential:
    def test_composed_epsilon_is_sum(self, setting):
        domain, policy = setting
        m1 = GraphRandomizedResponse(policy, 0.4)
        m2 = GraphRandomizedResponse(policy, 0.3)
        r1 = realized_epsilon(m1, policy, n=1)
        r2 = realized_epsilon(m2, policy, n=1)
        composed = _SequentialPair(m1, m2)
        eps = realized_epsilon(composed, policy, n=1)
        # Theorem 4.1 upper bound at the nominal budgets ...
        assert eps <= 0.7 + 1e-9
        # ... and the realized losses add exactly for independent runs
        assert eps == pytest.approx(r1 + r2, abs=1e-9)

    def test_three_way_composition(self, setting):
        domain, policy = setting
        ms = [GraphRandomizedResponse(policy, e) for e in (0.2, 0.3, 0.1)]
        composed = _SequentialPair(_SequentialPair(ms[0], ms[1]), ms[2])
        assert realized_epsilon(composed, policy, n=1) <= 0.6 + 1e-9


class TestTheorem42Parallel:
    def test_disjoint_subsets_cost_max(self, setting):
        """Mechanisms on disjoint individuals: realized eps = max, not sum."""
        domain, policy = setting
        base1 = GraphRandomizedResponse(policy, 0.5)
        base2 = GraphRandomizedResponse(policy, 0.3)
        r1 = realized_epsilon(base1, policy, n=1)
        r2 = realized_epsilon(base2, policy, n=1)
        par = _ParallelPair(
            _RestrictedMechanism(base1, ids=[0]), _RestrictedMechanism(base2, ids=[1])
        )
        eps = realized_epsilon(par, policy, n=2)
        assert eps == pytest.approx(max(r1, r2), abs=1e-9)
        assert eps < r1 + r2  # strictly better than sequential accounting

    def test_overlapping_subsets_cost_sum(self, setting):
        """The same individual in both subsets pays sequentially."""
        domain, policy = setting
        base1 = GraphRandomizedResponse(policy, 0.5)
        base2 = GraphRandomizedResponse(policy, 0.3)
        r1 = realized_epsilon(base1, policy, n=1)
        r2 = realized_epsilon(base2, policy, n=1)
        par = _ParallelPair(
            _RestrictedMechanism(base1, ids=[0]), _RestrictedMechanism(base2, ids=[0])
        )
        eps = realized_epsilon(par, policy, n=1)
        assert eps == pytest.approx(r1 + r2, abs=1e-9)


class TestKiferLinAxioms:
    """Kifer & Lin's axioms (Section 4.2): transformation invariance and
    convexity, checked on exact output distributions."""

    def test_post_processing_invariance(self, setting):
        domain, policy = setting
        base = GraphRandomizedResponse(policy, 0.6)
        base_eps = realized_epsilon(base, policy, n=1)

        class PostProcessed:
            def output_distribution(self, db):
                out = {}
                for o, p in base.output_distribution(db).items():
                    # collapse outputs: is the released value >= 1?
                    key = o[0] >= 1
                    out[key] = out.get(key, 0.0) + p
                return out

        assert realized_epsilon(PostProcessed(), policy, n=1) <= base_eps + 1e-9

    def test_convexity(self, setting):
        """A public coin choosing between two (eps, P)-private mechanisms
        stays (eps, P)-private."""
        domain, policy = setting
        m1 = GraphRandomizedResponse(policy, 0.6)
        m2 = GraphRandomizedResponse(policy, 0.5)

        class Mixture:
            def output_distribution(self, db):
                out = {}
                for tag, m, w in (("a", m1, 0.3), ("b", m2, 0.7)):
                    for o, p in m.output_distribution(db).items():
                        out[(tag, o)] = w * p
                return out

        assert realized_epsilon(Mixture(), policy, n=1) <= 0.6 + 1e-9
