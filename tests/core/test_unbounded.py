"""Tests for the ⊥ (cardinality) extension of Section 3.1."""

import numpy as np
import pytest

from repro import Database, Domain, Policy
from repro.core.definition import realized_epsilon
from repro.core.graphs import FullDomainGraph, LineGraph
from repro.core.sensitivity import (
    cumulative_histogram_sensitivity,
    histogram_sensitivity,
)
from repro.core.unbounded import (
    BOTTOM,
    BottomAugmentedGraph,
    presence_database,
    with_bottom,
)
from repro.mechanisms import GraphRandomizedResponse


@pytest.fixture
def base_domain():
    return Domain.integers("v", 4)


@pytest.fixture
def augmented(base_domain):
    return with_bottom(base_domain)


class TestAugmentedDomain:
    def test_bottom_at_end(self, base_domain, augmented):
        assert augmented.size == 5
        assert augmented.value_of(4) == (BOTTOM,)
        # real values keep their indices
        for i in range(4):
            assert augmented.value_of(i) == base_domain.value_of(i)

    def test_bottom_is_singleton(self):
        from repro.core.unbounded import _Bottom

        assert _Bottom() is BOTTOM
        assert repr(BOTTOM) == "⊥"

    def test_requires_ordered(self, grid_domain):
        with pytest.raises(TypeError):
            with_bottom(grid_domain)


class TestAugmentedGraph:
    def test_membership_all_edges(self, base_domain, augmented):
        g = BottomAugmentedGraph(LineGraph(base_domain), augmented, "all")
        assert g.has_edge(0, 4)  # value <-> ⊥
        assert g.has_edge(0, 1)  # base edges kept
        assert not g.has_edge(0, 2)
        assert sorted(g.neighbors_of(4)) == [0, 1, 2, 3]

    def test_membership_none(self, base_domain, augmented):
        g = BottomAugmentedGraph(LineGraph(base_domain), augmented, "none")
        assert not g.has_edge(0, 4)
        assert list(g.neighbors_of(4)) == []
        assert g.graph_distance(0, 4) == float("inf")

    def test_distance_through_bottom(self, base_domain, augmented):
        g = BottomAugmentedGraph(LineGraph(base_domain), augmented, "all")
        assert g.graph_distance(0, 4) == 1.0
        # 0 -> ⊥ -> 3 is shorter than the 3-hop line path
        assert g.graph_distance(0, 3) == 2.0

    def test_validation(self, base_domain, augmented):
        with pytest.raises(ValueError):
            BottomAugmentedGraph(LineGraph(base_domain), base_domain, "all")
        with pytest.raises(ValueError):
            BottomAugmentedGraph(LineGraph(base_domain), augmented, "some")

    def test_sensitivities(self, base_domain, augmented):
        g = BottomAugmentedGraph(LineGraph(base_domain), augmented, "all")
        policy = Policy(augmented, g)
        # membership flips make every prefix sensitive
        assert cumulative_histogram_sensitivity(policy) == 4.0
        assert histogram_sensitivity(policy) == 2.0


class TestPresenceDatabase:
    def test_construction(self, augmented):
        db = presence_database(augmented, {0: 2, 3: 1}, population=5)
        assert db.n == 5
        assert db[0] == 2 and db[3] == 1
        assert db[1] == 4  # ⊥

    def test_validation(self, augmented):
        with pytest.raises(ValueError):
            presence_database(augmented, {9: 0}, population=5)
        with pytest.raises(ValueError):
            presence_database(augmented, {0: 4}, population=5)  # 4 is ⊥ itself

    def test_insertion_deletion_neighbors(self, base_domain, augmented):
        """Unbounded-DP semantics: insert/delete = flip to/from ⊥."""
        from repro.core.neighbors import are_neighbors_unconstrained

        g = BottomAugmentedGraph(FullDomainGraph(base_domain), augmented, "all")
        policy = Policy(augmented, g)
        present = presence_database(augmented, {0: 2}, population=2)
        deleted = present.replace(0, 4)
        assert are_neighbors_unconstrained(policy, present, deleted)

    def test_membership_privacy_certified(self, base_domain, augmented):
        """Randomized response over the augmented graph protects presence:
        the exact Blowfish check passes at the nominal epsilon."""
        g = BottomAugmentedGraph(FullDomainGraph(base_domain), augmented, "all")
        policy = Policy(augmented, g)
        mech = GraphRandomizedResponse(policy, 0.9)
        assert realized_epsilon(mech, policy, n=1) <= 0.9 + 1e-9

    def test_membership_public_mode_leaks_presence(self, base_domain, augmented):
        """With membership='none', ⊥ never mixes: presence is public."""
        g = BottomAugmentedGraph(FullDomainGraph(base_domain), augmented, "none")
        policy = Policy(augmented, g)
        mech = GraphRandomizedResponse(policy, 0.9)
        db = presence_database(augmented, {}, population=1)
        dist = mech.output_distribution(db)
        assert set(dist) == {(4,)}  # ⊥ stays ⊥ with certainty
