"""Tests for the discriminative secret graph families (Section 3.1)."""

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AttributeGraph,
    Database,
    DistanceThresholdGraph,
    Domain,
    ExplicitGraph,
    FullDomainGraph,
    LineGraph,
    Partition,
    PartitionGraph,
)

INF = float("inf")


class TestFullDomainGraph:
    def test_edges(self, small_ordered_domain):
        g = FullDomainGraph(small_ordered_domain)
        assert g.has_edge(0, 9)
        assert not g.has_edge(4, 4)
        assert len(list(g.edges())) == 45  # C(10, 2)

    def test_distance(self, small_ordered_domain):
        g = FullDomainGraph(small_ordered_domain)
        assert g.graph_distance(0, 0) == 0.0
        assert g.graph_distance(0, 9) == 1.0

    def test_structure_constants(self, small_ordered_domain):
        g = FullDomainGraph(small_ordered_domain)
        assert g.max_edge_l1() == 9.0
        assert g.max_edge_index_gap() == 9
        assert g.has_any_edge()

    def test_huge_domain_analytics(self):
        g = FullDomainGraph(Domain.grid([4000, 4000]))
        assert g.has_any_edge()
        assert g.max_edge_l1() == 2 * 3999.0


class TestAttributeGraph:
    def test_edges_are_single_attribute_changes(self, grid_domain):
        g = AttributeGraph(grid_domain)
        i = grid_domain.index_of((0, 0))
        assert g.has_edge(i, grid_domain.index_of((0, 2)))
        assert g.has_edge(i, grid_domain.index_of((3, 0)))
        assert not g.has_edge(i, grid_domain.index_of((1, 1)))

    def test_neighbors_count(self, grid_domain):
        g = AttributeGraph(grid_domain)
        # each node: (4-1) + (3-1) = 5 neighbors
        assert len(list(g.neighbors_of(0))) == 5

    def test_neighbors_match_has_edge(self, abc_domain):
        g = AttributeGraph(abc_domain)
        for i in range(abc_domain.size):
            nbrs = set(g.neighbors_of(i))
            expected = {j for j in range(abc_domain.size) if g.has_edge(i, j)}
            assert nbrs == expected

    def test_distance_is_hamming(self, grid_domain):
        g = AttributeGraph(grid_domain)
        i = grid_domain.index_of((0, 0))
        j = grid_domain.index_of((3, 2))
        assert g.graph_distance(i, j) == 2.0

    def test_max_edge_l1_is_max_span(self, grid_domain):
        assert AttributeGraph(grid_domain).max_edge_l1() == 3.0

    def test_huge_domain_analytics(self):
        g = AttributeGraph(Domain.grid([256, 256, 256]))
        assert g.has_any_edge()
        assert g.max_edge_l1() == 255.0


class TestPartitionGraph:
    @pytest.fixture
    def part_graph(self):
        d = Domain.grid([4, 4])
        return PartitionGraph(Partition.uniform_grid(d, [2, 2]))

    def test_edges_within_blocks(self, part_graph):
        d = part_graph.domain
        assert part_graph.has_edge(d.index_of((0, 0)), d.index_of((1, 1)))
        assert not part_graph.has_edge(d.index_of((0, 0)), d.index_of((2, 2)))

    def test_cross_block_distance_infinite(self, part_graph):
        d = part_graph.domain
        assert part_graph.graph_distance(d.index_of((0, 0)), d.index_of((3, 3))) == INF
        assert part_graph.graph_distance(d.index_of((0, 0)), d.index_of((1, 0))) == 1.0

    def test_max_edge_l1(self, part_graph):
        assert part_graph.max_edge_l1() == 2.0

    def test_singleton_partition_has_no_edges(self, grid_domain):
        g = PartitionGraph(Partition.singletons(grid_domain))
        assert not g.has_any_edge()
        assert g.max_edge_l1() == 0.0

    def test_ordered_index_gap(self):
        d = Domain.integers("v", 10)
        labels = np.array([0] * 5 + [1] * 5)
        g = PartitionGraph(Partition(d, labels))
        assert g.max_edge_index_gap() == 4


class TestDistanceThresholdGraph:
    def test_edges_by_l1(self, grid_domain):
        g = DistanceThresholdGraph(grid_domain, 2.0)
        i = grid_domain.index_of((0, 0))
        assert g.has_edge(i, grid_domain.index_of((1, 1)))
        assert not g.has_edge(i, grid_domain.index_of((2, 1)))

    def test_theta_must_be_positive(self, grid_domain):
        with pytest.raises(ValueError):
            DistanceThresholdGraph(grid_domain, 0.0)

    def test_ordered_neighbors_window(self):
        d = Domain.integers("v", 10)
        g = DistanceThresholdGraph(d, 2.0)
        assert sorted(g.neighbors_of(5)) == [3, 4, 6, 7]
        assert sorted(g.neighbors_of(0)) == [1, 2]

    def test_hops_closed_form_1d(self):
        d = Domain.integers("v", 20)
        g = DistanceThresholdGraph(d, 3.0)
        assert g.graph_distance(0, 3) == 1.0
        assert g.graph_distance(0, 4) == 2.0
        assert g.graph_distance(0, 19) == math.ceil(19 / 3)

    def test_hops_closed_form_matches_bfs_on_grid(self):
        d = Domain.grid([5, 5])
        g = DistanceThresholdGraph(d, 2.0)
        nxg = g.to_networkx()
        for i in range(0, 25, 3):
            for j in range(0, 25, 4):
                if i == j:
                    continue
                expected = nx.shortest_path_length(nxg, i, j)
                assert g.graph_distance(i, j) == float(expected), (i, j)

    @given(
        theta=st.floats(min_value=1.0, max_value=6.0),
        size=st.integers(min_value=2, max_value=15),
    )
    @settings(max_examples=30, deadline=None)
    def test_hops_property_1d(self, theta, size):
        d = Domain.integers("v", size)
        g = DistanceThresholdGraph(d, theta)
        nxg = g.to_networkx()
        for j in range(1, size):
            try:
                expected = float(nx.shortest_path_length(nxg, 0, j))
            except nx.NetworkXNoPath:
                expected = INF
            assert g.graph_distance(0, j) == expected

    def test_max_edge_l1_capped_at_theta(self):
        d = Domain.integers("v", 100)
        assert DistanceThresholdGraph(d, 7.0).max_edge_l1() == 7.0
        assert DistanceThresholdGraph(d, 1e6).max_edge_l1() == 99.0

    def test_max_edge_index_gap(self):
        d = Domain.integers("v", 100)
        assert DistanceThresholdGraph(d, 7.0).max_edge_index_gap() == 7
        # non-unit spacing: gap is in index units
        d2 = Domain.uniform_grid([100], spacings=[5.0])
        assert DistanceThresholdGraph(d2, 7.0).max_edge_index_gap() == 1
        assert DistanceThresholdGraph(d2, 25.0).max_edge_index_gap() == 5

    def test_has_any_edge_analytic(self):
        d = Domain.uniform_grid([100, 100, 100, 100], spacings=[0.01] * 4)
        assert DistanceThresholdGraph(d, 0.1).has_any_edge()
        assert not DistanceThresholdGraph(d, 0.005).has_any_edge()


class TestLineGraph:
    def test_adjacency(self, small_ordered_domain):
        g = LineGraph(small_ordered_domain)
        assert g.has_edge(3, 4)
        assert not g.has_edge(3, 5)
        assert sorted(g.neighbors_of(0)) == [1]
        assert sorted(g.neighbors_of(5)) == [4, 6]

    def test_distance(self, small_ordered_domain):
        g = LineGraph(small_ordered_domain)
        assert g.graph_distance(2, 7) == 5.0

    def test_constants(self, small_ordered_domain):
        g = LineGraph(small_ordered_domain)
        assert g.max_edge_index_gap() == 1
        assert g.max_edge_l1() == 1.0

    def test_non_unit_spacing(self):
        d = Domain.ordered("v", [0.0, 5.0, 20.0])
        g = LineGraph(d)
        assert g.has_edge(1, 2)
        assert g.max_edge_l1() == 15.0

    def test_requires_ordered(self, grid_domain):
        with pytest.raises(TypeError):
            LineGraph(grid_domain)


class TestExplicitGraph:
    def test_basic(self, tiny_domain):
        g = ExplicitGraph(tiny_domain, [(0, 1), (1, 2)])
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 2)
        assert g.graph_distance(0, 2) == 2.0
        assert g.max_edge_index_gap() == 1

    def test_disconnected_distance(self, small_ordered_domain):
        g = ExplicitGraph(small_ordered_domain, [(0, 1)])
        assert g.graph_distance(0, 5) == INF

    def test_from_networkx(self, tiny_domain):
        nxg = nx.path_graph(3)
        g = ExplicitGraph(tiny_domain, nxg)
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_self_loops_removed(self, tiny_domain):
        g = ExplicitGraph(tiny_domain, [(0, 0), (0, 1)])
        assert not g.has_edge(0, 0)

    def test_out_of_domain_edge_rejected(self, tiny_domain):
        with pytest.raises(ValueError):
            ExplicitGraph(tiny_domain, [(0, 5)])

    def test_max_edge_l1(self, small_ordered_domain):
        g = ExplicitGraph(small_ordered_domain, [(0, 7), (1, 2)])
        assert g.max_edge_l1() == 7.0


class TestEdgesConsistency:
    """edges() must agree with has_edge for every family (small domains)."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda d: FullDomainGraph(d),
            lambda d: AttributeGraph(d),
            lambda d: DistanceThresholdGraph(d, 2.0),
            lambda d: PartitionGraph(Partition.uniform_grid(d, [2, 2])),
        ],
    )
    def test_edges_match_has_edge(self, factory):
        d = Domain.grid([4, 3])
        g = factory(d)
        listed = set(g.edges())
        expected = {
            (i, j)
            for i in range(d.size)
            for j in range(i + 1, d.size)
            if g.has_edge(i, j)
        }
        assert listed == expected
