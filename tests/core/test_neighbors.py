"""Tests for neighbor semantics (Definition 4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Attribute,
    ConstraintSet,
    CountQuery,
    Database,
    Domain,
    ExplicitGraph,
    Policy,
)
from repro.core.neighbors import (
    are_neighbors,
    are_neighbors_unconstrained,
    discriminative_pairs,
    enumerate_databases,
    neighbor_pairs,
    tuple_delta,
    unconstrained_neighbors,
)


class TestPairsAndDelta:
    def test_discriminative_pairs(self, tiny_domain):
        policy = Policy(tiny_domain, ExplicitGraph(tiny_domain, [(0, 1)]))
        d1 = Database.from_indices(tiny_domain, [0, 2])
        d2 = Database.from_indices(tiny_domain, [1, 2])
        assert discriminative_pairs(policy, d1, d2) == {(0, 0, 1)}

    def test_non_edge_changes_excluded(self, tiny_domain):
        policy = Policy(tiny_domain, ExplicitGraph(tiny_domain, [(0, 1)]))
        d1 = Database.from_indices(tiny_domain, [0, 0])
        d2 = Database.from_indices(tiny_domain, [1, 2])  # (0,2) is not an edge
        assert discriminative_pairs(policy, d1, d2) == {(0, 0, 1)}

    def test_tuple_delta(self, tiny_domain):
        d1 = Database.from_indices(tiny_domain, [0, 2])
        d2 = Database.from_indices(tiny_domain, [1, 2])
        assert tuple_delta(d1, d2) == {(0, 0), (0, 1)}

    def test_cardinality_mismatch(self, tiny_domain):
        policy = Policy.differential_privacy(tiny_domain)
        d1 = Database.from_indices(tiny_domain, [0])
        d2 = Database.from_indices(tiny_domain, [0, 1])
        with pytest.raises(ValueError):
            discriminative_pairs(policy, d1, d2)


class TestUnconstrained:
    def test_one_edge_change_is_neighbor(self, tiny_domain):
        policy = Policy.differential_privacy(tiny_domain)
        d1 = Database.from_indices(tiny_domain, [0, 2])
        assert are_neighbors_unconstrained(policy, d1, d1.replace(0, 1))

    def test_two_changes_not_neighbors(self, tiny_domain):
        policy = Policy.differential_privacy(tiny_domain)
        d1 = Database.from_indices(tiny_domain, [0, 2])
        d2 = Database.from_indices(tiny_domain, [1, 1])
        assert not are_neighbors_unconstrained(policy, d1, d2)

    def test_non_edge_change_not_neighbor(self, tiny_domain):
        policy = Policy.line(tiny_domain)
        d1 = Database.from_indices(tiny_domain, [0])
        assert not are_neighbors_unconstrained(policy, d1, d1.replace(0, 2))
        assert are_neighbors_unconstrained(policy, d1, d1.replace(0, 1))

    def test_generator_counts(self, tiny_domain):
        policy = Policy.differential_privacy(tiny_domain)
        db = Database.from_indices(tiny_domain, [0, 1])
        nbrs = list(unconstrained_neighbors(policy, db))
        assert len(nbrs) == 4  # 2 tuples x 2 alternative values
        assert all(are_neighbors_unconstrained(policy, db, n) for n in nbrs)

    def test_generator_rejects_constrained(self, tiny_domain):
        q = CountQuery.from_mask(tiny_domain, np.array([True, False, False]))
        db = Database.from_indices(tiny_domain, [0])
        policy = Policy.full_domain(tiny_domain, ConstraintSet.from_database([q], db))
        with pytest.raises(ValueError):
            list(unconstrained_neighbors(policy, db))

    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=1, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_all_pairs_differ_in_exactly_one_tuple(self, size, n):
        domain = Domain.integers("v", size)
        policy = Policy.differential_privacy(domain)
        pairs = neighbor_pairs(policy, n)
        for d1, d2 in pairs:
            assert int(np.sum(d1.indices != d2.indices)) == 1
        # count: |T|^n databases x n positions x (|T|-1) alternatives
        assert len(pairs) == size**n * n * (size - 1)


class TestEnumerateDatabases:
    def test_counts(self, tiny_domain):
        assert len(list(enumerate_databases(tiny_domain, 2))) == 9

    def test_filtering_by_constraints(self, tiny_domain):
        q = CountQuery.from_mask(tiny_domain, np.array([True, False, False]))
        base = Database.from_indices(tiny_domain, [0, 1])
        policy = Policy.full_domain(
            tiny_domain, ConstraintSet.from_database([q], base)
        )
        dbs = list(enumerate_databases(tiny_domain, 2, policy))
        # exactly one tuple must be 0: 2 positions x 2 non-zero values
        assert len(dbs) == 4
        assert all(policy.admits(db) for db in dbs)

    def test_universe_guard(self):
        big = Domain.integers("v", 50)
        with pytest.raises(ValueError, match="too large"):
            list(enumerate_databases(big, 5))


class TestConstrainedNeighbors:
    """Definition 4.1 with constraints, on hand-checkable cases."""

    @pytest.fixture
    def marginal_policy(self):
        # 2x2 domain; the A1 marginal is public; full-domain secrets
        domain = Domain(
            [Attribute("A1", ["a1", "a2"]), Attribute("A2", ["b1", "b2"])]
        )
        q1 = CountQuery(domain, lambda v: v[0] == "a1", "A1=a1")
        q2 = CountQuery(domain, lambda v: v[0] == "a2", "A1=a2")
        base = Database.from_values(
            domain, [("a1", "b1"), ("a1", "b1"), ("a2", "b1")]
        )
        policy = Policy.full_domain(
            domain, ConstraintSet.from_database([q1, q2], base)
        )
        return policy, base

    def test_single_change_within_marginal_cell(self, marginal_policy):
        policy, base = marginal_policy
        # changing b1 -> b2 keeps the A1 marginal: a valid minimal neighbor
        d2 = base.replace(0, base.domain.index_of(("a1", "b2")))
        assert are_neighbors(policy, base, d2)

    def test_single_change_breaking_marginal_not_neighbor(self, marginal_policy):
        policy, base = marginal_policy
        d2 = base.replace(0, base.domain.index_of(("a2", "b1")))
        assert not are_neighbors(policy, base, d2)  # violates I_Q

    def test_compensating_double_change_is_neighbor(self, marginal_policy):
        policy, base = marginal_policy
        # swap one tuple a1->a2 and another a2->a1: marginal preserved, and
        # no single change can realize a strict subset of the pairs
        d2 = base.replace_many(
            {
                0: base.domain.index_of(("a2", "b2")),
                2: base.domain.index_of(("a1", "b2")),
            }
        )
        assert are_neighbors(policy, base, d2)

    def test_triple_change_not_minimal(self, marginal_policy):
        policy, base = marginal_policy
        # same as above plus a gratuitous extra change: dominated via 3(a)
        d2 = base.replace_many(
            {
                0: base.domain.index_of(("a2", "b2")),
                1: base.domain.index_of(("a1", "b2")),
                2: base.domain.index_of(("a1", "b2")),
            }
        )
        assert not are_neighbors(policy, base, d2)

    def test_unconstrained_fallback(self, tiny_domain):
        policy = Policy.differential_privacy(tiny_domain)
        d1 = Database.from_indices(tiny_domain, [0])
        assert are_neighbors(policy, d1, d1.replace(0, 1))

    def test_neighbor_pairs_symmetry(self, marginal_policy):
        policy, base = marginal_policy
        pairs = neighbor_pairs(policy, 3)
        pair_set = {(hash(a), hash(b)) for a, b in pairs}
        assert pair_set, "constrained policy should still have neighbors"
        for a, b in pairs:
            assert (hash(b), hash(a)) in pair_set
