"""Test for the full experiment runner (CSV + report emission)."""

from pathlib import Path

import pytest

from repro.experiments import quick_scale
from repro.experiments.runner import run_all


@pytest.mark.slow
def test_run_all_writes_reports(tmp_path):
    scale = quick_scale().with_(
        trials=2,
        epsilons=(0.3, 1.0),
        n_range_queries=50,
        twitter_n=2000,
        skin_n=3000,
        adult_n=2000,
    )
    tables = run_all(tmp_path, scale=scale)
    assert len(tables) == 12  # 6 fig1 + 2 fig2 + 3 ablations + budget allocation
    report = tmp_path / "report.txt"
    assert report.exists()
    text = report.read_text()
    assert "Figure 1(a)" in text and "Figure 2(c)" in text
    csvs = sorted(p.name for p in tmp_path.glob("*.csv"))
    assert "fig1a.csv" in csvs and "fig2b.csv" in csvs
    assert "ablation_fanout.csv" in csvs
    assert "budget_allocation.csv" in csvs
    for table in tables:
        assert table.points, table.name
