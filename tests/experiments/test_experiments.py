"""Tests for the experiment harness (tiny scales; shapes, not numbers)."""

import numpy as np
import pytest

from repro import Policy
from repro.datasets import adult_capital_loss_dataset, gaussian_clusters_dataset
from repro.experiments import (
    ExperimentScale,
    budget_split_ablation,
    default_scale,
    fanout_ablation,
    figure_1c,
    figure_1f,
    figure_2b,
    inference_ablation,
    kmeans_budget_ablation,
    paper_scale,
    quick_scale,
    twitter_partition,
)
from repro.experiments.results import ResultTable, SeriesPoint


@pytest.fixture
def tiny_scale():
    return quick_scale().with_(
        trials=2,
        epsilons=(0.2, 1.0),
        n_range_queries=100,
        twitter_n=3000,
        skin_n=5000,
        adult_n=4000,
    )


class TestConfig:
    def test_paper_scale_matches_paper(self):
        s = paper_scale()
        assert s.trials == 50
        assert len(s.epsilons) == 10
        assert s.twitter_n == 193_563
        assert s.n_range_queries == 10_000

    def test_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert default_scale().label == "paper"
        monkeypatch.delenv("REPRO_FULL")
        assert default_scale().label == "quick"

    def test_with_override(self):
        s = quick_scale().with_(trials=3)
        assert s.trials == 3
        assert isinstance(s, ExperimentScale)


class TestResultTable:
    def test_round_trip(self, tmp_path):
        t = ResultTable("demo")
        t.add("a", 0.1, 1.0, 0.9, 1.1)
        t.add("a", 0.5, 2.0, 1.8, 2.2)
        t.add("b", 0.1, 3.0, 2.9, 3.1)
        assert t.series_names() == ["a", "b"]
        assert t.value("a", 0.5) == 2.0
        assert [p.x for p in t.series("a")] == [0.1, 0.5]
        with pytest.raises(KeyError):
            t.value("a", 0.9)
        path = t.to_csv(tmp_path / "out.csv")
        content = path.read_text().splitlines()
        assert content[0] == "series,epsilon,mean,q25,q75"
        assert len(content) == 4

    def test_format_text(self):
        t = ResultTable("demo")
        t.add("a", 0.1, 1.2345, 1.0, 1.5)
        text = t.format_text()
        assert "demo" in text and "1.234" in text

    def test_point_is_frozen(self):
        p = SeriesPoint("a", 0.1, 1.0, 0.9, 1.1)
        with pytest.raises(AttributeError):
            p.mean = 2.0


class TestFigure1:
    def test_figure_1c_shapes(self, tiny_scale):
        table = figure_1c(tiny_scale)
        names = table.series_names()
        assert "laplace" in names
        assert len(names) == 5
        assert {p.x for p in table.points} == {0.2, 1.0}
        for p in table.points:
            assert p.mean > 0
            assert p.q25 <= p.q75

    def test_figure_1c_blowfish_beats_laplace(self):
        scale = quick_scale().with_(trials=6, epsilons=(0.2,))
        table = figure_1c(scale)
        lap = table.value("laplace", 0.2)
        best_blowfish = min(
            table.value(name, 0.2)
            for name in table.series_names()
            if name != "laplace"
        )
        assert best_blowfish < lap

    def test_twitter_partition_block_counts(self):
        for n_blocks in (10, 100, 1000, 10000, 120000):
            assert twitter_partition(n_blocks).n_blocks == n_blocks
        with pytest.raises(KeyError):
            twitter_partition(42)

    def test_figure_1f_exact_at_finest_partition(self, tiny_scale):
        scale = tiny_scale.with_(epsilons=(0.2,), trials=2)
        table = figure_1f(scale)
        # partition|120000 has zero sensitivity: private == non-private
        assert table.value("partition|120000", 0.2) == pytest.approx(1.0)
        assert table.value("laplace", 0.2) >= 1.0


class TestFigure1Remaining:
    """Direct (tiny-scale) coverage for the panels the benches also run."""

    def test_figure_1a_series(self, tiny_scale):
        from repro.experiments import figure_1a

        table = figure_1a(tiny_scale.with_(trials=2, epsilons=(0.5,)))
        assert set(table.series_names()) == {
            "laplace",
            "blowfish|2000km",
            "blowfish|1000km",
            "blowfish|500km",
            "blowfish|100km",
        }

    def test_figure_1b_series(self, tiny_scale):
        from repro.experiments import figure_1b

        table = figure_1b(tiny_scale.with_(trials=2, epsilons=(0.5,)))
        assert "blowfish|128" in table.series_names()
        assert all(p.mean > 0 for p in table.points)

    def test_figure_1d_rows(self, tiny_scale):
        from repro.experiments import figure_1d

        table = figure_1d(tiny_scale.with_(trials=2, epsilons=(0.5, 1.0)))
        assert set(table.series_names()) == {"1%sample", "10%sample", "full"}

    def test_figure_1e_all_datasets(self, tiny_scale):
        from repro.experiments import figure_1e

        table = figure_1e(tiny_scale.with_(trials=2, epsilons=(0.5,)))
        names = table.series_names()
        for ds in ("twitter", "skin01", "synth"):
            assert f"{ds}: laplace" in names
            assert f"{ds}: attribute" in names


class TestFigure2:
    def test_figure_2b_monotone_in_theta(self, tiny_scale):
        table = figure_2b(tiny_scale)
        eps = 1.0
        errs = [
            table.value("theta=full domain", eps),
            table.value("theta=100", eps),
            table.value("theta=1", eps),
        ]
        # error drops (strongly) as theta shrinks
        assert errs[0] > errs[1] > errs[2]
        assert errs[0] > 10 * errs[2]

    def test_more_epsilon_less_error(self, tiny_scale):
        table = figure_2b(tiny_scale)
        assert table.value("theta=100", 0.2) > table.value("theta=100", 1.0)


class TestAblations:
    def test_budget_split(self, tiny_scale):
        db = adult_capital_loss_dataset(tiny_scale.adult_n, rng=0)
        table = budget_split_ablation(db, 100, tiny_scale)
        assert set(table.series_names()) == {"optimal", "uniform"}

    def test_inference_helps(self, tiny_scale):
        scale = tiny_scale.with_(trials=4, epsilons=(0.5,))
        db = adult_capital_loss_dataset(scale.adult_n, rng=0)
        table = inference_ablation(db, 100, scale)
        assert table.value("inference", 0.5) < table.value("raw", 0.5)

    def test_fanout(self, tiny_scale):
        db = adult_capital_loss_dataset(tiny_scale.adult_n, rng=0)
        table = fanout_ablation(db, 100, epsilon=0.5, fanouts=(4, 16), scale=tiny_scale)
        assert {p.x for p in table.points} == {4, 16}

    def test_kmeans_budget(self, tiny_scale):
        db = gaussian_clusters_dataset(n=300, rng=0)
        policy = Policy.distance_threshold(db.domain, 0.5)
        table = kmeans_budget_ablation(
            db, policy, epsilon=1.0, fractions=(0.25, 0.75), scale=tiny_scale
        )
        assert {p.x for p in table.points} == {0.25, 0.75}
