"""Shared harness for the HTTP serving tests.

``ServerHarness`` runs one :class:`~repro.net.BlowfishHTTPServer` on a
dedicated event-loop thread so blocking test code (clients, raw sockets,
signals) drives it exactly like external traffic would.  ``close()``
triggers the server's own graceful drain and joins the thread — every test
exercises the real shutdown path, not a daemon-thread teardown.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro import Database, Domain, Policy
from repro.api import BlowfishService
from repro.net import BlowfishHTTPServer

DOMAIN_SIZE = 60


def make_domain() -> Domain:
    return Domain.integers("v", DOMAIN_SIZE)


def make_service(seed: int = 3, cls=BlowfishService, **kwargs):
    """A service over a deterministic dataset — same seed, same data."""
    domain = make_domain()
    rng = np.random.default_rng(seed)
    db = Database.from_indices(domain, rng.integers(0, domain.size, 500))
    service = cls(**kwargs)
    service.register_dataset("data", db)
    return service


def seeded_request(i: int, *, session: str | None = None, epsilon: float = 0.5,
                   budget: float = 50.0, seed: int = 100) -> dict:
    """Deterministic request ``i``: seeded, so answers are reproducible."""
    lo = i % (DOMAIN_SIZE - 10)
    return {
        "policy": Policy.line(make_domain()).to_spec(),
        "epsilon": epsilon,
        "dataset": {"name": "data"},
        "queries": [{"kind": "range", "lo": lo, "hi": lo + 9}],
        "session": session if session is not None else f"client-{i}",
        "budget": budget,
        "seed": seed + i,
    }


class GatedService(BlowfishService):
    """``handle`` blocks on :attr:`gate` for requests carrying ``hold``.

    ``entered`` counts executions that reached the gate — coalesced
    duplicates never get here, so it measures actual service-side work.
    """

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()
        self.entered = threading.Semaphore(0)
        self.executions = 0
        self._count_lock = threading.Lock()

    def handle(self, request):
        if isinstance(request, dict) and request.get("hold"):
            with self._count_lock:
                self.executions += 1
            self.entered.release()
            self.gate.wait(20)
            request = {k: v for k, v in request.items() if k != "hold"}
        return super().handle(request)


class ServerHarness:
    """One server on its own event-loop thread; ``close()`` drains it."""

    def __init__(self, service=None, **options):
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self.server: BlowfishHTTPServer | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.address: tuple[str, int] | None = None
        self._thread = threading.Thread(
            target=self._run, args=(service, options), daemon=True
        )
        self._thread.start()
        if not self._ready.wait(20):
            raise RuntimeError("server thread did not become ready")
        if self._failure is not None:
            raise RuntimeError("server failed to start") from self._failure

    def _run(self, service, options) -> None:
        async def main():
            try:
                self.server = BlowfishHTTPServer(service, **options)
                self.loop = asyncio.get_running_loop()
                self.address = await self.server.start()
            except BaseException as exc:
                self._failure = exc
                self._ready.set()
                return
            self._ready.set()
            await self.server.serve_forever()

        asyncio.run(main())

    @property
    def host(self) -> str:
        return self.address[0]

    @property
    def port(self) -> int:
        return self.address[1]

    def begin_close(self, deadline: float | None = None) -> None:
        """Kick off the graceful drain without waiting for it."""
        server, loop = self.server, self.loop

        def _go():
            loop.create_task(server.close(deadline=deadline))

        loop.call_soon_threadsafe(_go)

    def close(self, deadline: float | None = None) -> None:
        if (
            self.server is not None
            and self.loop is not None
            and self._thread.is_alive()
        ):
            self.begin_close(deadline)
        self._thread.join(30)
        assert not self._thread.is_alive(), "server thread failed to drain"

    def __enter__(self) -> "ServerHarness":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@pytest.fixture
def harness():
    """A running server over the deterministic demo service."""
    with ServerHarness(make_service()) as h:
        yield h
