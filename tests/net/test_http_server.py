"""Socket-level integration tests for the HTTP serving front end.

Everything here talks to a real listening server over real sockets: the
wire answers must be bitwise-identical to in-process ``service.handle``,
error kinds must map to the documented statuses, backpressure must answer
429 without queueing, a slow-loris peer must be cut off by the read
timeout, oversized bodies must bounce as 413 before being read, and
``/metrics`` must parse as Prometheus text exposition.
"""

from __future__ import annotations

import http.client
import json
import re
import socket
import threading
import time

import pytest

from repro import Policy
from repro.net import BlowfishClient, BlowfishHTTPError

from harness import (
    GatedService,
    ServerHarness,
    make_domain,
    make_service,
    seeded_request,
)


# -- answers over the wire --------------------------------------------------------------


def test_concurrent_keepalive_clients_match_direct_service(harness):
    """8 keep-alive clients, seeded traffic: wire answers == in-process."""
    reference = make_service()  # same seed, same data, untouched by HTTP
    per_client = 3
    results: dict[int, list[dict]] = {}
    errors: list[BaseException] = []

    def run_client(c: int) -> None:
        try:
            with BlowfishClient(harness.host, harness.port) as client:
                out = []
                for j in range(per_client):
                    response = client.handle(seeded_request(c * per_client + j))
                    assert client.last_status == 200, response
                    out.append(response)
                results[c] = out
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=run_client, args=(c,)) for c in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert not errors, errors
    assert sorted(results) == list(range(8))
    for c, responses in results.items():
        for j, response in enumerate(responses):
            direct = reference.handle(seeded_request(c * per_client + j))
            assert response["ok"] and direct["ok"]
            assert response["answers"] == direct["answers"]
            assert response["meta"]["epsilon_spent"] == direct["meta"]["epsilon_spent"]


def test_request_id_round_trips_into_meta(harness):
    with BlowfishClient(harness.host, harness.port) as client:
        response = client.handle(seeded_request(0), request_id="trace-me-7")
        assert response["meta"]["request_id"] == "trace-me-7"
        # a generated id is still echoed end to end
        response = client.handle(seeded_request(1))
        assert response["meta"]["request_id"] == client.last_request_id


def test_body_request_id_wins_without_header(harness):
    """No ``X-Request-Id`` header: the body's own ``request_id`` is used."""
    conn = http.client.HTTPConnection(harness.host, harness.port, timeout=10)
    try:
        request = dict(seeded_request(2), request_id="body-id-1")
        body = json.dumps(request).encode()
        conn.request("POST", "/v1/handle", body=body,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        payload = json.loads(resp.read())
        assert resp.status == 200
        assert resp.headers["x-request-id"] == "body-id-1"
        assert payload["meta"]["request_id"] == "body-id-1"
    finally:
        conn.close()


def test_coalesced_duplicates_get_their_own_request_ids():
    """Identical seeded requests in flight execute once but each caller
    still sees its own ``meta.request_id`` (copy-on-write rewrite)."""
    service = make_service(cls=GatedService)
    with ServerHarness(service) as harness:
        request = dict(seeded_request(0, session="shared"), hold=True)
        out: dict[str, dict] = {}

        def send(rid: str) -> None:
            with BlowfishClient(harness.host, harness.port) as client:
                out[rid] = client.handle(dict(request), request_id=rid)

        t1 = threading.Thread(target=send, args=("rid-a",))
        t1.start()
        assert service.entered.acquire(timeout=10)  # first is executing
        t2 = threading.Thread(target=send, args=("rid-b",))
        t2.start()
        time.sleep(0.3)  # let the duplicate coalesce onto the in-flight future
        service.gate.set()
        t1.join(20)
        t2.join(20)
        assert service.executions == 1, "duplicate was not coalesced"
        assert out["rid-a"]["answers"] == out["rid-b"]["answers"]
        assert out["rid-a"]["meta"]["request_id"] == "rid-a"
        assert out["rid-b"]["meta"]["request_id"] == "rid-b"


# -- request-id hardening ---------------------------------------------------------------


def test_body_request_id_cannot_inject_response_headers(harness):
    """CR/LF in a body-supplied ``request_id`` must never split the
    response head into extra headers (the header path is parsed per line,
    but the JSON body accepts any string)."""
    conn = http.client.HTTPConnection(harness.host, harness.port, timeout=10)
    try:
        evil = "x\r\nset-cookie: evil=1"
        request = dict(seeded_request(3), request_id=evil)
        body = json.dumps(request).encode()
        conn.request("POST", "/v1/handle", body=body,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        payload = json.loads(resp.read())
        assert resp.status == 200
        assert resp.headers.get("set-cookie") is None  # nothing injected
        echoed = resp.headers["x-request-id"]
        assert "\r" not in echoed and "\n" not in echoed
        assert echoed == "xset-cookie: evil=1"  # control chars stripped
        assert payload["meta"]["request_id"] == echoed
    finally:
        conn.close()


def test_lone_surrogate_request_id_does_not_kill_connection(harness):
    """Lone surrogates are valid JSON; they must be stripped rather than
    blow up ``encode()`` and tear the connection down mid-response."""
    conn = http.client.HTTPConnection(harness.host, harness.port, timeout=10)
    try:
        request = dict(seeded_request(4), request_id="\ud800ok\udfff")
        body = json.dumps(request).encode("ascii")
        conn.request("POST", "/v1/handle", body=body,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        payload = json.loads(resp.read())
        assert resp.status == 200
        assert resp.headers["x-request-id"] == "ok"
        assert payload["meta"]["request_id"] == "ok"
        # the keep-alive connection survived and still serves
        conn.request("POST", "/v1/handle",
                     body=json.dumps(seeded_request(5)).encode(),
                     headers={"Content-Type": "application/json"})
        assert conn.getresponse().status == 200
    finally:
        conn.close()


def test_unsalvageable_request_id_falls_back_to_generated(harness):
    """An id that is empty after sanitization yields a server id, not an
    empty header."""
    conn = http.client.HTTPConnection(harness.host, harness.port, timeout=10)
    try:
        request = dict(seeded_request(6), request_id="\r\n\t")
        conn.request("POST", "/v1/handle", body=json.dumps(request).encode(),
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        resp.read()
        assert resp.status == 200
        assert resp.headers["x-request-id"]  # non-empty, generated
    finally:
        conn.close()


# -- wire-protocol hardening ------------------------------------------------------------


def _raw_roundtrip(host: str, port: int, data: bytes) -> tuple[int, dict, bytes]:
    """Send raw bytes, read exactly one response: ``(status, headers, body)``."""
    with socket.create_connection((host, port), timeout=10) as s:
        s.sendall(data)
        s.settimeout(10)
        buf = b""
        while b"\r\n\r\n" not in buf:
            chunk = s.recv(4096)
            if not chunk:
                break
            buf += chunk
        head, _, body = buf.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        want = int(headers.get("content-length", 0))
        while len(body) < want:
            chunk = s.recv(4096)
            if not chunk:
                break
            body += chunk
        return status, headers, body[:want]


def test_transfer_encoding_is_rejected(harness):
    """Chunked framing is unsupported: trusting Content-Length while a TE
    header rides along would desync the connection (request smuggling), so
    the request bounces as 400 and the connection closes."""
    status, headers, body = _raw_roundtrip(
        harness.host, harness.port,
        b"POST /v1/handle HTTP/1.1\r\nHost: x\r\n"
        b"Transfer-Encoding: chunked\r\nContent-Length: 2\r\n\r\n"
        b"2\r\n{}\r\n0\r\n\r\n",
    )
    assert status == 400
    assert headers["connection"] == "close"
    assert json.loads(body)["error"]["kind"] == "bad_request"


def test_duplicate_content_length_is_rejected(harness):
    """Two Content-Length headers is a smuggling vector — 400, not
    last-wins."""
    status, headers, body = _raw_roundtrip(
        harness.host, harness.port,
        b"POST /v1/handle HTTP/1.1\r\nHost: x\r\n"
        b"Content-Length: 2\r\nContent-Length: 12\r\n\r\n{}",
    )
    assert status == 400
    assert headers["connection"] == "close"
    assert json.loads(body)["error"]["kind"] == "bad_request"


def test_connection_header_matches_tokens_not_substrings(harness):
    # an unknown token merely *containing* "close" must not disable
    # HTTP/1.1 keep-alive...
    status, headers, _body = _raw_roundtrip(
        harness.host, harness.port,
        b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close-notify\r\n\r\n",
    )
    assert status == 200
    assert headers["connection"] == "keep-alive"
    # ...while a real "close" token anywhere in the list does
    status, headers, _body = _raw_roundtrip(
        harness.host, harness.port,
        b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: foo, close\r\n\r\n",
    )
    assert status == 200
    assert headers["connection"] == "close"


# -- error mapping ----------------------------------------------------------------------


def test_malformed_json_answers_400(harness):
    with BlowfishClient(harness.host, harness.port) as client:
        body = b"{not json"
        status, _headers, payload = client._request(
            "POST", "/v1/handle", body,
            {"Content-Type": "application/json", "Content-Length": str(len(body))},
        )
        assert status == 400
        error = json.loads(payload)["error"]
        assert error["kind"] == "bad_request"


def test_non_object_body_answers_400(harness):
    with BlowfishClient(harness.host, harness.port) as client:
        response = client.handle([1, 2, 3])  # type: ignore[arg-type]
        assert client.last_status == 400
        assert response["error"]["kind"] == "bad_request"


def test_invalid_request_answers_400(harness):
    with BlowfishClient(harness.host, harness.port) as client:
        response = client.handle({"policy": "not-a-spec"})
        assert client.last_status == 400
        assert response["error"]["kind"] == "invalid_request"


def test_budget_exhausted_answers_409(harness):
    with BlowfishClient(harness.host, harness.port) as client:
        first = client.handle(
            seeded_request(0, session="broke", epsilon=0.5, budget=0.5)
        )
        assert client.last_status == 200, first
        # a different epsilon needs a fresh release: 0.5 + 0.7 > budget 0.5
        second = client.handle(
            seeded_request(1, session="broke", epsilon=0.7, budget=0.5)
        )
        assert client.last_status == 409
        assert second["error"]["kind"] == "budget_exhausted"


def test_edge_scan_refusal_answers_422_with_diagnostic_code(harness):
    """An EdgeScanRefused-style refusal maps to 422 and carries the exact
    diagnostic code the static checker predicts (POL2xx)."""
    from repro.core.domain import Attribute, Domain
    from repro.core.graphs import DistanceThresholdGraph

    domain = Domain([Attribute("a", range(4096)), Attribute("b", range(4096))])
    spec = Policy(domain, DistanceThresholdGraph(domain, 1.5)).to_spec()
    spec["constraints"] = [
        {"query": {"kind": "count", "name": "low", "support": [0, 1]}, "value": 3}
    ]
    with BlowfishClient(harness.host, harness.port) as client:
        response = client.handle(
            {
                "policy": spec,
                "epsilon": 0.5,
                "dataset": {"indices": [0, 1], "domain": domain.to_spec()},
                "queries": [{"kind": "count", "support": [0, 1]}],
            }
        )
        assert client.last_status == 422
        assert response["error"]["code"].startswith("POL2")
        assert response["error"]["family"] == "DistanceThresholdGraph"


def test_unknown_route_and_method_mapping(harness):
    with BlowfishClient(harness.host, harness.port) as client:
        status, _h, _b = client._request("GET", "/nope", None, {})
        assert status == 404
        status, _h, _b = client._request("GET", "/v1/handle", None, {})
        assert status == 405
        body = b"{}"
        status, _h, _b = client._request(
            "POST", "/healthz", body, {"Content-Length": str(len(body))}
        )
        assert status == 405


def test_internal_errors_never_leak_tracebacks():
    class ExplodingService(GatedService):
        def handle(self, request):
            raise RuntimeError("secret internal state: /etc/passwd")

    service = make_service(cls=ExplodingService)
    with ServerHarness(service) as harness:
        with BlowfishClient(harness.host, harness.port) as client:
            response = client.handle(seeded_request(0))
            assert client.last_status == 500
            assert response["error"]["kind"] == "internal"
            flat = json.dumps(response)
            assert "secret internal state" not in flat
            assert "Traceback" not in flat


# -- backpressure -----------------------------------------------------------------------


def test_saturated_max_inflight_answers_429_with_retry_after():
    service = make_service(cls=GatedService)
    with ServerHarness(service, max_inflight=2, retry_after=3.0) as harness:
        blocked: list[dict] = []

        def send_blocked(i: int) -> None:
            with BlowfishClient(harness.host, harness.port, retries=0) as client:
                blocked.append(client.handle(dict(seeded_request(i), hold=True)))

        # staggered so each lands in its own batch (a batch executes its
        # requests sequentially on one pool thread)
        threads = []
        for i in range(2):
            t = threading.Thread(target=send_blocked, args=(i,))
            t.start()
            threads.append(t)
            assert service.entered.acquire(timeout=10)  # executing service-side

        with BlowfishClient(harness.host, harness.port, retries=0) as client:
            body = json.dumps(seeded_request(9)).encode()
            status, headers, payload = client._request(
                "POST", "/v1/handle", body, {"Content-Length": str(len(body))}
            )
            assert status == 429
            assert headers["retry-after"] == "3"
            assert json.loads(payload)["error"]["kind"] == "overloaded"

        service.gate.set()
        for t in threads:
            t.join(20)
        assert len(blocked) == 2 and all(r["ok"] for r in blocked)


def test_client_retries_429_until_admitted():
    service = make_service(cls=GatedService)
    with ServerHarness(service, max_inflight=1, retry_after=0.2) as harness:
        t = threading.Thread(
            target=lambda: BlowfishClient(harness.host, harness.port, retries=0)
            .handle(dict(seeded_request(0), hold=True))
        )
        t.start()
        assert service.entered.acquire(timeout=10)
        threading.Timer(0.5, service.gate.set).start()
        with BlowfishClient(
            harness.host, harness.port, retries=20, backoff=0.05
        ) as client:
            response = client.handle(seeded_request(1))
            assert client.last_status == 200, response
            assert client.stats["retries_429"] >= 1
        t.join(20)


# -- protocol limits --------------------------------------------------------------------


def test_slow_loris_partial_head_is_cut_off():
    with ServerHarness(make_service(), read_timeout=0.4) as harness:
        start = time.monotonic()
        with socket.create_connection((harness.host, harness.port), timeout=10) as s:
            s.sendall(b"POST /v1/handle HTTP/1.1\r\nHost: x")  # head never finishes
            s.settimeout(10)
            data = s.recv(4096)
        elapsed = time.monotonic() - start
        assert data == b""  # closed without a response: nothing to answer
        assert elapsed < 5.0  # the read timeout, not the test timeout, cut it


def test_idle_keepalive_connection_is_reaped():
    with ServerHarness(make_service(), read_timeout=0.4) as harness:
        with BlowfishClient(harness.host, harness.port, retries=0) as client:
            assert client.handle(seeded_request(0))["ok"]
            sock = client._conn.sock
            sock.settimeout(10)
            assert sock.recv(4096) == b""  # server reaped the idle connection


def test_oversized_body_answers_413():
    max_body = 2048
    with ServerHarness(make_service(), max_body=max_body) as harness:
        request = seeded_request(0)
        request["padding"] = "x" * (max_body * 4)
        with BlowfishClient(harness.host, harness.port, retries=0) as client:
            response = client.handle(request)
            assert client.last_status == 413
            assert response["error"]["kind"] == "bad_request"
        # the server survives and still answers normal traffic
        with BlowfishClient(harness.host, harness.port) as client:
            assert client.handle(seeded_request(1))["ok"]


# -- observability ----------------------------------------------------------------------

_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? "
    r"[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[0-9]+)$"
)


def test_metrics_endpoint_renders_parseable_prometheus(harness):
    with BlowfishClient(harness.host, harness.port) as client:
        assert client.handle(seeded_request(0))["ok"]
        client.handle({"policy": "nope"})  # a 400, for the status label
        text = client.metrics_text()
    lines = text.strip().splitlines()
    assert lines, "empty exposition"
    for line in lines:
        if line.startswith("#"):
            assert line.startswith(("# HELP", "# TYPE")), line
        else:
            assert _PROM_LINE.match(line), f"unparseable line: {line!r}"
    assert 'repro_http_requests_total{route="handle",status="200"} 1' in text
    assert 'repro_http_requests_total{route="handle",status="400"} 1' in text
    assert any(l.startswith("repro_http_inflight") for l in lines)
    assert any(l.startswith("repro_http_request_seconds_bucket") for l in lines)


def test_healthz_reports_ok(harness):
    with BlowfishClient(harness.host, harness.port) as client:
        assert client.healthz() == {"status": "ok"}
        assert client.last_status == 200


# -- graceful drain ---------------------------------------------------------------------


def test_close_finishes_inflight_requests():
    """Drain started mid-request: the in-flight request completes (200),
    new connections are refused, and the drain reports clean."""
    service = make_service(cls=GatedService)
    harness = ServerHarness(service, drain_deadline=10.0)
    result: dict[str, object] = {}

    def send() -> None:
        with BlowfishClient(harness.host, harness.port, retries=0) as client:
            result["response"] = client.handle(dict(seeded_request(0), hold=True))
            result["status"] = client.last_status

    t = threading.Thread(target=send)
    t.start()
    assert service.entered.acquire(timeout=10)  # request is inside the service
    harness.begin_close()
    deadline = time.monotonic() + 10
    while not harness.server.draining and time.monotonic() < deadline:
        time.sleep(0.01)
    assert harness.server.draining
    time.sleep(0.2)  # listener is now closed
    with pytest.raises((ConnectionError, OSError, BlowfishHTTPError)):
        with socket.create_connection((harness.host, harness.port), timeout=2) as s:
            s.sendall(b"GET /healthz HTTP/1.1\r\n\r\n")
            if s.recv(1) == b"":
                raise ConnectionError("refused")
    service.gate.set()  # let the in-flight request finish
    t.join(20)
    harness.close()
    assert result["status"] == 200
    assert result["response"]["ok"] is True  # type: ignore[index]


def test_drain_deadline_aborts_stragglers_with_503():
    """A request still running past the deadline gets a best-effort 503."""
    service = make_service(cls=GatedService)
    harness = ServerHarness(service, drain_deadline=0.3, write_timeout=5.0)
    result: dict[str, object] = {}

    def send() -> None:
        with BlowfishClient(harness.host, harness.port, retries=0) as client:
            try:
                result["response"] = client.handle(dict(seeded_request(0), hold=True))
                result["status"] = client.last_status
            except BlowfishHTTPError as exc:
                result["error"] = exc

    t = threading.Thread(target=send)
    t.start()
    assert service.entered.acquire(timeout=10)
    harness.begin_close()
    time.sleep(1.0)  # deadline (0.3s) passes with the gate still shut
    service.gate.set()
    t.join(20)
    harness.close()
    # the straggler was answered 503 (or cut off) — never silently hung
    if "status" in result:
        assert result["status"] == 503
    else:
        assert isinstance(result["error"], BlowfishHTTPError)
