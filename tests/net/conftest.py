"""Fixtures for the HTTP serving tests (helpers live in ``harness.py``)."""

from __future__ import annotations

import pytest

from harness import ServerHarness, make_service


@pytest.fixture
def harness():
    """A running server over the deterministic demo service."""
    with ServerHarness(make_service()) as h:
        yield h
