"""Multi-worker HTTP serving: one port, one budget truth, merged metrics.

Workers are real forked processes behind a real shared port; budget truth
lives in one SQLite ledger.  The acceptance properties pinned here:

* keep-alive clients spread across workers get answers bitwise-identical
  to the in-process service, with exactly one ledger spend per client;
* ``/metrics`` scraped from *any* worker reports whole-tier counts;
* SIGTERM drains every worker gracefully — in-flight requests complete
  (0 dropped) and workers exit 0.
"""

from __future__ import annotations

import re
import threading
import time
from functools import partial

import numpy as np
import pytest

from repro import Database, Domain
from repro.api import BlowfishService, SQLiteLedgerStore
from repro.net import BlowfishClient, MultiprocHTTPServer

from harness import make_service, seeded_request

DOMAIN_SIZE = 60


# module-level factories: picklable under any multiprocessing start method
def _worker_service(ledger_path: str, cls=BlowfishService):
    domain = Domain.integers("v", DOMAIN_SIZE)
    rng = np.random.default_rng(3)  # same data as harness.make_service
    db = Database.from_indices(domain, rng.integers(0, domain.size, 500))
    service = cls(ledger_store=SQLiteLedgerStore(ledger_path))
    service.register_dataset("data", db)
    return service


class _SlowService(BlowfishService):
    """Requests carrying ``slow`` take ~0.8s — long enough that a SIGTERM
    mid-request exercises the drain path, short enough to finish in it."""

    def handle(self, request):
        if isinstance(request, dict) and request.get("slow"):
            time.sleep(0.8)
            request = {k: v for k, v in request.items() if k != "slow"}
        return super().handle(request)


def _slow_worker_service(ledger_path: str):
    return _worker_service(ledger_path, cls=_SlowService)


def _broken_factory():
    raise ValueError("this worker cannot be built")


def test_one_ledger_spend_per_client_across_workers(tmp_path):
    ledger_path = str(tmp_path / "ledger.sqlite")
    reference = make_service()  # in-process twin: same seed, same data
    clients = 6
    repeats = 3
    results: dict[int, list[dict]] = {}
    errors: list[BaseException] = []

    with MultiprocHTTPServer(
        partial(_worker_service, ledger_path), workers=2
    ) as server:

        def run_client(c: int) -> None:
            try:
                # one keep-alive connection per client: its repeats all hit
                # the same worker, whose release cache answers them free
                with BlowfishClient(server.host, server.port) as client:
                    out = []
                    for _ in range(repeats):
                        response = client.handle(seeded_request(c))
                        assert client.last_status == 200, response
                        out.append(response)
                    results[c] = out
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=run_client, args=(c,)) for c in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
    assert not errors, errors
    assert sorted(results) == list(range(clients))
    for c, responses in results.items():
        direct = reference.handle(seeded_request(c))
        for response in responses:
            assert response["answers"] == direct["answers"]
    ledger = SQLiteLedgerStore(ledger_path)
    try:
        keys = ledger.keys()
        assert len(keys) == clients  # one session per client
        for key in keys:
            assert ledger.total(key) == pytest.approx(0.5)  # exactly one spend
    finally:
        ledger.close()


def test_metrics_scrape_merges_all_workers(tmp_path):
    ledger_path = str(tmp_path / "ledger.sqlite")
    total_requests = 12
    with MultiprocHTTPServer(
        partial(_worker_service, ledger_path), workers=2, metrics_flush=0.1
    ) as server:

        def run_client(c: int) -> None:
            with BlowfishClient(server.host, server.port) as client:
                for j in range(3):
                    assert client.handle(seeded_request(4 * c + j))["ok"]

        threads = [threading.Thread(target=run_client, args=(c,)) for c in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)

        # any worker's scrape must converge on the whole-tier count once
        # every worker's spool flush (0.1s cadence) has caught up
        pattern = re.compile(
            r'repro_http_requests_total\{route="handle",status="200"\} (\d+)'
        )
        deadline = time.monotonic() + 10
        seen = -1
        while time.monotonic() < deadline:
            with BlowfishClient(server.host, server.port) as client:
                match = pattern.search(client.metrics_text())
            seen = int(match.group(1)) if match else -1
            if seen == total_requests:
                break
            time.sleep(0.2)
        assert seen == total_requests


def test_sigterm_drains_inflight_to_completion(tmp_path):
    """Workers signalled mid-request finish it (0 dropped) and exit 0."""
    ledger_path = str(tmp_path / "ledger.sqlite")
    server = MultiprocHTTPServer(
        partial(_slow_worker_service, ledger_path), workers=2, drain_deadline=10.0
    )
    server.start()
    results: dict[int, tuple[int, dict]] = {}
    errors: list[BaseException] = []

    def run_client(c: int) -> None:
        try:
            with BlowfishClient(server.host, server.port, retries=0) as client:
                response = client.handle(dict(seeded_request(c), slow=True))
                results[c] = (client.last_status, response)
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=run_client, args=(c,)) for c in range(3)]
    for t in threads:
        t.start()
    time.sleep(0.35)  # all three are in flight (each takes ~0.8s)
    codes = server.stop(timeout=30)  # SIGTERM -> graceful drain
    for t in threads:
        t.join(60)
    assert not errors, errors
    assert sorted(results) == [0, 1, 2]
    for c, (status, response) in results.items():
        assert status == 200, response  # in-flight work was NOT dropped
        assert response["ok"] is True
    assert codes == [0, 0]


def test_worker_startup_failure_is_reported():
    server = MultiprocHTTPServer(_broken_factory, workers=1)
    with pytest.raises(RuntimeError, match="worker failed to start"):
        server.start()
    assert server._procs == []  # everything was reaped


def test_rejects_nonpositive_workers():
    with pytest.raises(ValueError):
        MultiprocHTTPServer(_broken_factory, workers=0)
