"""The drain seam under the HTTP layer, and the status mapping table.

``AsyncBlowfishService.drain()`` is the contract the server's graceful
shutdown leans on: everything accepted before the drain settles (queued
requests still execute — nothing is dropped), everything after raises
``ServiceDraining``.  ``status_for_response`` is the one function that
turns service error kinds into wire statuses.
"""

from __future__ import annotations

import asyncio
import gc

import pytest

from repro.api import AsyncBlowfishService, ServiceDraining
from repro.net import status_for_response

from harness import make_service, seeded_request


# -- status mapping ---------------------------------------------------------------------


def test_status_for_response_mapping():
    assert status_for_response({"ok": True, "answers": []}) == 200
    assert (
        status_for_response({"ok": False, "error": {"kind": "budget_exhausted"}})
        == 409
    )
    # a refusal carrying a diagnostic code (EdgeScanRefused details) is 422
    assert (
        status_for_response(
            {"ok": False, "error": {"kind": "invalid_request", "code": "POL201"}}
        )
        == 422
    )
    assert (
        status_for_response({"ok": False, "error": {"kind": "invalid_request"}})
        == 400
    )
    assert status_for_response({"ok": False, "error": {"kind": "internal"}}) == 500
    # malformed shapes never map to a success status
    assert status_for_response(None) == 500
    assert status_for_response({"ok": False}) == 500
    assert status_for_response({"ok": False, "error": "boom"}) == 500


# -- the drain seam ---------------------------------------------------------------------


def test_drain_flushes_accepted_work_and_rejects_new():
    service = make_service()

    async def main():
        tier = AsyncBlowfishService(service)
        try:
            tasks = [
                asyncio.ensure_future(tier.handle(seeded_request(i)))
                for i in range(5)
            ]
            await asyncio.sleep(0.01)  # let every submission enqueue
            assert not tier.draining
            await tier.drain()
            assert tier.draining
            for task in tasks:
                assert task.done()
                assert task.result()["ok"] is True  # accepted work settled
            with pytest.raises(ServiceDraining):
                await tier.handle(seeded_request(9))
        finally:
            await tier.aclose()

    asyncio.run(main())


def test_drain_is_idempotent_and_aclose_still_works():
    service = make_service()

    async def main():
        tier = AsyncBlowfishService(service)
        response = await tier.handle(seeded_request(0))
        assert response["ok"]
        await tier.drain()
        await tier.drain()  # second drain is a no-op, not an error
        await tier.aclose()

    asyncio.run(main())


def test_drain_retrieves_abandoned_waiter_exceptions():
    """A waiter whose connection was aborted mid-flight never consumes its
    future; ``drain()`` must mark any exception on it retrieved so shutdown
    does not log "exception was never retrieved"."""
    problems: list[str] = []

    async def main():
        loop = asyncio.get_running_loop()
        loop.set_exception_handler(
            lambda _loop, ctx: problems.append(ctx.get("message", ""))
        )
        tier = AsyncBlowfishService(make_service())
        # a pending submission exactly as handle() registers one, whose
        # waiter has gone away and whose execution fails mid-drain
        fut = loop.create_future()
        tier._pending.add(fut)
        fut.add_done_callback(tier._pending.discard)
        loop.call_later(0.02, fut.set_exception, RuntimeError("batch blew up"))
        await tier.drain()
        assert fut.done()
        del fut
        gc.collect()
        await asyncio.sleep(0)
        await tier.aclose()

    asyncio.run(main())
    assert not [m for m in problems if "never retrieved" in m], problems


def test_request_id_does_not_defeat_coalescing():
    """Unique per-request ids must not change the coalescing identity."""
    service = make_service()

    async def main():
        tier = AsyncBlowfishService(service, batch_window=0.05)
        try:
            base = seeded_request(0, session="shared")
            tasks = [
                asyncio.ensure_future(
                    tier.handle(dict(base, request_id=f"rid-{i}"))
                )
                for i in range(4)
            ]
            responses = await asyncio.gather(*tasks)
            stats = tier.stats()
            assert stats["executed"] == 1
            assert stats["coalesced"] == 3
            assert all(r["answers"] == responses[0]["answers"] for r in responses)
        finally:
            await tier.aclose()

    asyncio.run(main())
