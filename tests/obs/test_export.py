"""Exporters: Prometheus text rendering and cross-worker merging.

``render_prometheus`` must emit something a real Prometheus can scrape
(prefixed names, one ``# TYPE`` per metric, cumulative ``le`` buckets);
``merge_snapshots`` must aggregate worker snapshots by the documented
rules — counters and histograms sum, gauges max.
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, merge_snapshots, render_prometheus


def _snap(**series):
    """Build a snapshot dict from keyword shorthand used below."""
    return {
        "counters": series.get("counters", []),
        "gauges": series.get("gauges", []),
        "histograms": series.get("histograms", []),
    }


def _counter(name, value, **labels):
    return {"name": name, "labels": labels, "value": value}


class TestRenderPrometheus:
    def test_counters_and_gauges_with_labels(self):
        text = render_prometheus(
            _snap(
                counters=[_counter("requests_total", 3, op="answer", outcome="ok")],
                gauges=[_counter("lru_size", 2.0, map="sessions")],
            )
        )
        assert "# TYPE repro_requests_total counter\n" in text
        assert '\nrepro_lru_size{map="sessions"} 2\n' in text
        assert 'repro_requests_total{op="answer",outcome="ok"} 3' in text

    def test_type_header_appears_once_per_metric(self):
        text = render_prometheus(
            _snap(
                counters=[
                    _counter("requests_total", 1, op="a"),
                    _counter("requests_total", 2, op="b"),
                ]
            )
        )
        assert text.count("# TYPE repro_requests_total counter") == 1

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(
            _snap(
                histograms=[
                    {
                        "name": "lat",
                        "labels": {"op": "x"},
                        "buckets": [0.1, 1.0],
                        "counts": [2, 1, 4],  # per-bucket, overflow last
                        "sum": 12.5,
                        "count": 7,
                    }
                ]
            )
        )
        assert 'repro_lat_bucket{le="0.1",op="x"} 2' in text
        assert 'repro_lat_bucket{le="1",op="x"} 3' in text
        assert 'repro_lat_bucket{le="+Inf",op="x"} 7' in text
        assert 'repro_lat_sum{op="x"} 12.5' in text
        assert 'repro_lat_count{op="x"} 7' in text

    def test_names_and_label_values_are_sanitized(self):
        text = render_prometheus(
            _snap(counters=[_counter("weird-name.total", 1, key='sa"y\nhi')])
        )
        assert "repro_weird_name_total" in text
        assert '\\"' in text and "\\n" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(_snap()) == ""

    def test_registry_snapshot_roundtrips(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", map="plans").inc(4)
        reg.histogram("seconds", buckets=(0.5,)).observe(0.1)
        text = render_prometheus(reg.snapshot())
        assert 'repro_hits_total{map="plans"} 4' in text
        assert 'repro_seconds_bucket{le="+Inf"} 1' in text


class TestMergeSnapshots:
    def test_counters_sum_across_workers(self):
        merged = merge_snapshots(
            [
                _snap(counters=[_counter("requests_total", 3, op="answer")]),
                _snap(counters=[_counter("requests_total", 5, op="answer")]),
            ]
        )
        assert merged["counters"] == [_counter("requests_total", 8, op="answer")]

    def test_distinct_series_stay_distinct(self):
        merged = merge_snapshots(
            [
                _snap(counters=[_counter("requests_total", 1, op="answer")]),
                _snap(counters=[_counter("requests_total", 2, op="plan")]),
            ]
        )
        assert {(c["labels"]["op"], c["value"]) for c in merged["counters"]} == {
            ("answer", 1), ("plan", 2),
        }

    def test_gauges_take_the_max(self):
        merged = merge_snapshots(
            [
                _snap(gauges=[_counter("ledger_spent_epsilon", 0.5, key="s")]),
                _snap(gauges=[_counter("ledger_spent_epsilon", 0.75, key="s")]),
                _snap(gauges=[_counter("ledger_spent_epsilon", 0.25, key="s")]),
            ]
        )
        assert merged["gauges"] == [_counter("ledger_spent_epsilon", 0.75, key="s")]

    def test_histograms_sum_elementwise(self):
        hist = {
            "name": "lat", "labels": {}, "buckets": [0.1, 1.0],
            "counts": [1, 2, 0], "sum": 1.5, "count": 3,
        }
        other = dict(hist, counts=[0, 1, 1], sum=3.0, count=2)
        (merged,) = merge_snapshots([_snap(histograms=[hist]), _snap(histograms=[other])])[
            "histograms"
        ]
        assert merged["counts"] == [1, 3, 1]
        assert merged["sum"] == pytest.approx(4.5)
        assert merged["count"] == 5

    def test_mismatched_bucket_layouts_still_sum_totals(self):
        a = {
            "name": "lat", "labels": {}, "buckets": [0.1],
            "counts": [1, 0], "sum": 0.05, "count": 1,
        }
        b = {
            "name": "lat", "labels": {}, "buckets": [0.5],
            "counts": [0, 2], "sum": 3.0, "count": 2,
        }
        (merged,) = merge_snapshots([_snap(histograms=[a]), _snap(histograms=[b])])[
            "histograms"
        ]
        assert merged["count"] == 3
        assert merged["sum"] == pytest.approx(3.05)
        assert merged["buckets"] == [0.1]  # first layout kept
        assert merged["counts"] == [1, 0]  # misaligned counts not guessed at

    def test_empty_and_missing_snapshots_are_skipped(self):
        merged = merge_snapshots(
            [{}, None, _snap(counters=[_counter("c", 1)])]
        )
        assert merged["counters"] == [_counter("c", 1)]
        assert merge_snapshots([]) == _snap()
