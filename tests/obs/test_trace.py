"""Spans and tracers: nesting, attributes, draining, and the no-op path.

The tracer's contract with the serving tier: one request produces one
span tree per thread, ``take()`` hands the finished roots to whoever
builds ``meta.trace``, and when tracing is off every instrumented call
site pays only shared-singleton method calls.
"""

from __future__ import annotations

import threading

from repro.obs import NULL_SPAN, NULL_TRACER, Span, Tracer


class TestSpanTree:
    def test_nesting_builds_one_tree(self):
        tracer = Tracer()
        with tracer.span("service") as root:
            with tracer.span("session"):
                with tracer.span("planner"):
                    pass
                with tracer.span("executor"):
                    pass
        (session,) = root.children
        assert [c.name for c in session.children] == ["planner", "executor"]
        assert [s.name for s in root.walk()] == [
            "service", "session", "planner", "executor",
        ]

    def test_attributes_from_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("step", family="range") as span:
            span.set(outcome="miss", epsilon_charged=0.5)
        assert span.attributes == {
            "family": "range", "outcome": "miss", "epsilon_charged": 0.5,
        }

    def test_elapsed_is_measured(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            pass
        assert span.elapsed >= 0.0

    def test_current_tracks_the_innermost_active_span(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_find_is_depth_first(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                with tracer.span("leaf") as first:
                    pass
            with tracer.span("leaf"):
                pass
        assert root.find("leaf") is first
        assert root.find("absent") is None

    def test_to_dict_is_json_ready(self):
        tracer = Tracer()
        with tracer.span("root", tenant="t1") as root:
            with tracer.span("child") as child:
                child.set(weird=frozenset({1}))  # non-JSON value stringified
        d = root.to_dict()
        assert d["name"] == "root"
        assert d["attributes"] == {"tenant": "t1"}
        assert isinstance(d["elapsed_ms"], float)
        (child_d,) = d["children"]
        assert isinstance(child_d["attributes"]["weird"], str)

    def test_exception_unwinding_keeps_the_stack_sane(self):
        tracer = Tracer()
        try:
            with tracer.span("root"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.current() is None
        (root,) = tracer.take()
        assert root.name == "root"


class TestTracerRoots:
    def test_take_drains_finished_roots(self):
        tracer = Tracer()
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        assert [s.name for s in tracer.take()] == ["one", "two"]
        assert tracer.take() == []

    def test_max_roots_drops_the_oldest(self):
        tracer = Tracer(max_roots=3)
        for i in range(5):
            with tracer.span(f"r{i}"):
                pass
        assert [s.name for s in tracer.take()] == ["r2", "r3", "r4"]

    def test_threads_get_independent_trees(self):
        tracer = Tracer()
        seen = {}

        def worker(tag):
            with tracer.span(tag):
                with tracer.span(f"{tag}-child"):
                    pass
            seen[tag] = tracer.take()

        threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for tag, roots in seen.items():
            (root,) = roots
            assert root.name == tag
            assert [c.name for c in root.children] == [f"{tag}-child"]


class TestNullTracer:
    def test_span_is_the_shared_noop_singleton(self):
        span = NULL_TRACER.span("anything", k=1)
        assert span is NULL_SPAN
        with span as s:
            assert s.set(epsilon=1.0) is s
        assert span.to_dict() == {}
        assert span.find("anything") is None
        assert list(span.walk()) == []

    def test_disabled_surface(self):
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is True
        assert NULL_TRACER.current() is None
        assert NULL_TRACER.take() == []

    def test_null_span_records_nothing(self):
        with NULL_TRACER.span("a"):
            with NULL_TRACER.span("b"):
                pass
        assert NULL_SPAN.attributes == {}
        assert NULL_SPAN.children == []


class TestSpanStandalone:
    def test_span_repr_mentions_name(self):
        tracer = Tracer()
        span = Span("thing", tracer, {})
        assert "thing" in repr(span)
