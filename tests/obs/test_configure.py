"""The stable ``repro.obs`` surface: configure / metrics / tracer.

Everything instrumented code touches goes through these three accessors;
their contract is that an unconfigured process sees only the null
singletons, ``configure`` flips process-wide state, and a per-request
tracer pushed around one request wins over both.
"""

from __future__ import annotations

from repro import obs
from repro.obs import NULL_REGISTRY, NULL_TRACER, MetricsRegistry, Tracer


class TestConfigure:
    def test_defaults_are_the_null_singletons(self):
        obs.configure(metrics=False, tracing=False)
        assert obs.metrics() is NULL_REGISTRY
        assert obs.tracer() is NULL_TRACER

    def test_metrics_toggle(self):
        reg, _ = obs.configure(metrics=True)
        assert isinstance(reg, MetricsRegistry)
        assert obs.metrics() is reg
        # already on: reconfiguring keeps the incumbent (counters survive)
        reg.counter("kept").inc()
        again, _ = obs.configure(metrics=True)
        assert again is reg
        obs.configure(metrics=False)
        assert obs.metrics() is NULL_REGISTRY

    def test_explicit_registry_is_installed(self):
        mine = MetricsRegistry(stripes=2)
        reg, _ = obs.configure(registry=mine)
        assert reg is mine and obs.metrics() is mine
        obs.configure(metrics=False)

    def test_tracing_toggle(self):
        _, tracer = obs.configure(tracing=True)
        assert isinstance(tracer, Tracer)
        assert obs.tracer() is tracer
        obs.configure(tracing=False)
        assert obs.tracer() is NULL_TRACER

    def test_none_leaves_state_alone(self):
        reg, _ = obs.configure(metrics=True)
        obs.configure()
        assert obs.metrics() is reg
        obs.configure(metrics=False)


class TestTracerOverride:
    def test_pushed_tracer_wins_over_global(self):
        _, global_tracer = obs.configure(tracing=True)
        per_request = Tracer()
        token = obs.push_tracer(per_request)
        try:
            assert obs.tracer() is per_request
            assert obs.current_tracer_override() is per_request
        finally:
            obs.pop_tracer(token)
        assert obs.tracer() is global_tracer
        assert obs.current_tracer_override() is None
        obs.configure(tracing=False)

    def test_override_works_without_global_tracing(self):
        per_request = Tracer()
        token = obs.push_tracer(per_request)
        try:
            with obs.tracer().span("request"):
                pass
        finally:
            obs.pop_tracer(token)
        (root,) = per_request.take()
        assert root.name == "request"
        assert obs.tracer() is NULL_TRACER
