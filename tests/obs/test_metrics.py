"""The metrics registry: instruments, label series, collectors, striping.

The registry must behave like one Prometheus client: ``(name, labels)``
identifies a series, get-or-create returns the live instrument, recording
is exact under thread contention, and the null registry makes every call
a constant-cost no-op.
"""

from __future__ import annotations

import gc
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", op="answer")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)
        assert c.sample() == {
            "name": "requests_total",
            "labels": {"op": "answer"},
            "value": pytest.approx(3.5),
        }

    def test_label_sets_are_independent_series(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", op="answer").inc()
        reg.counter("requests_total", op="plan").inc(5)
        assert reg.counter("requests_total", op="answer").value == 1
        assert reg.counter("requests_total", op="plan").value == 5

    def test_get_or_create_returns_the_live_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a="1") is reg.counter("x", a="1")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z") is reg.histogram("z")
        # same name, different kind or labels: different instruments
        assert reg.counter("x") is not reg.counter("x", a="1")
        assert reg.counter("same") is not reg.gauge("same")

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("ledger_spent_epsilon", key="s1")
        g.set(0.5)
        g.add(0.25)
        assert g.value == pytest.approx(0.75)

    def test_histogram_buckets_values(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 0.5, 5.0, 100.0):
            h.observe(v)
        assert h.sample()["counts"] == [2, 1, 1, 1]  # <=0.1 x2, then 1 each + overflow
        assert h.count == 5
        assert h.sum == pytest.approx(105.65)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 0.5))

    def test_histogram_buckets_pinned_at_first_creation(self):
        reg = MetricsRegistry()
        h = reg.histogram("batch_size", buckets=(1, 2, 4))
        again = reg.histogram("batch_size", buckets=(100, 200))
        assert again is h
        assert h.buckets == (1.0, 2.0, 4.0)

    def test_default_buckets_span_the_latency_range(self):
        reg = MetricsRegistry()
        h = reg.histogram("request_seconds")
        assert h.buckets == DEFAULT_LATENCY_BUCKETS


class TestRegistry:
    def test_snapshot_shape_and_order(self):
        reg = MetricsRegistry()
        reg.counter("b_total").inc()
        reg.counter("a_total", op="x").inc(2)
        reg.gauge("size").set(7)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert [s["name"] for s in snap["counters"]] == ["a_total", "b_total"]
        assert snap["gauges"] == [{"name": "size", "labels": {}, "value": 7.0}]
        (hist,) = snap["histograms"]
        assert hist["counts"] == [1, 0] and hist["count"] == 1

    def test_concurrent_increments_are_exact(self):
        reg = MetricsRegistry(stripes=4)
        n_threads, per_thread = 8, 500

        def worker(i):
            for _ in range(per_thread):
                reg.counter("hits_total").inc()
                reg.counter("hits_total", worker=str(i % 2)).inc()
                reg.histogram("lat", buckets=(1.0,)).observe(0.1)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits_total").value == n_threads * per_thread
        assert (
            reg.counter("hits_total", worker="0").value
            + reg.counter("hits_total", worker="1").value
            == n_threads * per_thread
        )
        assert reg.histogram("lat").count == n_threads * per_thread

    def test_clear_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.add_collector(lambda: [("g", {}, 1.0)])
        reg.clear()
        assert len(reg) == 0
        assert reg.snapshot() == {"counters": [], "gauges": [], "histograms": []}

    def test_rejects_nonpositive_stripes(self):
        with pytest.raises(ValueError):
            MetricsRegistry(stripes=0)


class TestCollectors:
    def test_function_collector_emits_gauges(self):
        reg = MetricsRegistry()
        reg.add_collector(lambda: [("ledger_spent_epsilon", {"key": "s"}, 0.5)])
        snap = reg.snapshot()
        assert snap["gauges"] == [
            {"name": "ledger_spent_epsilon", "labels": {"key": "s"}, "value": 0.5}
        ]

    def test_bound_method_collector_dies_with_its_owner(self):
        class Owner:
            def collect(self):
                return [("alive", {}, 1.0)]

        reg = MetricsRegistry()
        owner = Owner()
        reg.add_collector(owner.collect)
        assert reg.snapshot()["gauges"] != []
        del owner
        gc.collect()
        assert reg.snapshot()["gauges"] == []

    def test_broken_collector_never_breaks_the_snapshot(self):
        reg = MetricsRegistry()

        def broken():
            raise RuntimeError("collector exploded")

        reg.add_collector(broken)
        reg.add_collector(lambda: [("ok", {}, 1.0)])
        assert [g["name"] for g in reg.snapshot()["gauges"]] == ["ok"]


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        NULL_REGISTRY.counter("c", a="b").inc(5)
        NULL_REGISTRY.gauge("g").set(1)
        NULL_REGISTRY.gauge("g").add(1)
        NULL_REGISTRY.histogram("h", buckets=(1.0,)).observe(0.5)
        NULL_REGISTRY.add_collector(lambda: [("x", {}, 1.0)])
        assert NULL_REGISTRY.counter("c").value == 0.0
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.snapshot() == {
            "counters": [], "gauges": [], "histograms": [],
        }
        NULL_REGISTRY.clear()  # still a no-op

    def test_shared_instrument_singleton(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.gauge("b")
