"""Tests for the matrix-mechanism view: the paper's closed forms fall out
of exact linear algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Domain, Policy
from repro.analysis.bounds import (
    laplace_histogram_total_error,
    ordered_range_error_bound,
)
from repro.analysis.matrix import (
    all_ranges_workload,
    expected_workload_error,
    haar_strategy,
    hierarchical_strategy,
    identity_strategy,
    mean_range_query_error,
    prefix_strategy,
    prefix_workload,
    strategy_sensitivity,
)
from repro.core.sensitivity import cumulative_histogram_sensitivity


class TestStrategies:
    def test_shapes(self):
        assert identity_strategy(5).shape == (5, 5)
        assert prefix_strategy(5).shape == (5, 5)
        h = hierarchical_strategy(5, fanout=2)
        assert h.shape[1] == 5
        assert haar_strategy(5).shape[1] == 5

    def test_hierarchical_rows_are_tree_nodes(self):
        h = hierarchical_strategy(4, fanout=2)
        # root + 2 internal + 4 leaves = 7 rows
        assert h.shape[0] == 7
        assert h[0].tolist() == [1, 1, 1, 1]

    def test_haar_is_invertible_basis(self):
        a = haar_strategy(8)
        assert np.linalg.matrix_rank(a) == 8

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            hierarchical_strategy(4, fanout=1)


class TestSensitivity:
    def test_identity_full_domain_is_two(self):
        assert strategy_sensitivity(identity_strategy(6)) == 2.0

    def test_prefix_full_domain(self):
        # max column difference = |T| - 1 (the cumulative sensitivity)
        assert strategy_sensitivity(prefix_strategy(6)) == 5.0

    @pytest.mark.parametrize("theta", [1, 2, 4])
    def test_prefix_matches_cumulative_sensitivity_under_policies(self, theta):
        """The unification: S(prefix strategy, P) == S(S_T, P) per graph."""
        domain = Domain.integers("v", 8)
        policy = Policy.distance_threshold(domain, theta)
        matrix_s = strategy_sensitivity(prefix_strategy(8), policy.graph)
        assert matrix_s == cumulative_histogram_sensitivity(policy)

    def test_line_graph_prefix_sensitivity_is_one(self):
        domain = Domain.integers("v", 8)
        assert (
            strategy_sensitivity(prefix_strategy(8), Policy.line(domain).graph) == 1.0
        )

    @given(size=st.integers(min_value=2, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_identity_under_line_graph_still_two(self, size):
        domain = Domain.integers("v", size)
        g = Policy.line(domain).graph
        assert strategy_sensitivity(identity_strategy(size), g) == 2.0


class TestExpectedError:
    def test_section2_histogram_formula(self):
        """Identity strategy on the identity workload = 8|T|/eps^2."""
        size, eps = 16, 0.5
        err = expected_workload_error(
            identity_strategy(size), identity_strategy(size), eps
        )
        assert err == pytest.approx(laplace_histogram_total_error(size, eps))

    def test_theorem71_range_error_exact(self):
        """Prefix strategy under the line graph answers every range with at
        most 4/eps^2 error — Theorem 7.1 by linear algebra."""
        size, eps = 16, 0.5
        domain = Domain.integers("v", size)
        graph = Policy.line(domain).graph
        w = all_ranges_workload(size)
        a = prefix_strategy(size)
        per_query = (
            expected_workload_error(w, a, eps, graph=graph) / w.shape[0]
        )
        bound = ordered_range_error_bound(eps)
        assert per_query <= bound
        # the worst single query attains the bound exactly: a range needing
        # two prefixes has reconstruction norm 2 -> 2 * (1/eps)^2 * 2
        worst = max(
            expected_workload_error(w[i : i + 1], a, eps, graph=graph)
            for i in range(w.shape[0])
        )
        assert worst == pytest.approx(bound)

    def test_hierarchical_beats_identity_on_large_ranges(self):
        """Identity's mean range error grows linearly in |T|, the tree's
        polylogarithmically; the crossover sits near |T| ~ 300."""
        eps = 0.5
        small_i = mean_range_query_error(identity_strategy(32), 32, eps)
        small_h = mean_range_query_error(hierarchical_strategy(32, 2), 32, eps)
        assert small_i < small_h  # identity wins small domains
        big_i = mean_range_query_error(identity_strategy(512), 512, eps)
        big_h = mean_range_query_error(hierarchical_strategy(512, 2), 512, eps)
        assert big_h < big_i  # the tree wins large ones

    def test_gram_path_matches_explicit_workload(self):
        from repro.analysis.matrix import all_ranges_gram

        size, eps = 12, 0.5
        w = all_ranges_workload(size)
        assert np.allclose(w.T @ w, all_ranges_gram(size))
        a = hierarchical_strategy(size, 2)
        explicit = expected_workload_error(w, a, eps)
        via_gram = expected_workload_error(
            None, a, eps, workload_gram=all_ranges_gram(size)
        )
        assert explicit == pytest.approx(via_gram)

    def test_prefix_line_beats_every_dp_strategy(self):
        """The paper's separation: the Blowfish line policy's prefix
        strategy has lower range error than identity/hierarchical/haar can
        achieve under full-domain secrets."""
        size, eps = 16, 0.5
        domain = Domain.integers("v", size)
        line = Policy.line(domain).graph
        blowfish = mean_range_query_error(prefix_strategy(size), size, eps, graph=line)
        dp_best = min(
            mean_range_query_error(identity_strategy(size), size, eps),
            mean_range_query_error(hierarchical_strategy(size, 2), size, eps),
            mean_range_query_error(haar_strategy(size), size, eps),
            mean_range_query_error(prefix_strategy(size), size, eps),  # DP prefix
        )
        assert blowfish < 0.25 * dp_best

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_workload_error(identity_strategy(4), identity_strategy(3), 1.0)
        with pytest.raises(ValueError):
            expected_workload_error(identity_strategy(4), identity_strategy(4), 0.0)
        rank_deficient = np.zeros((2, 4))
        with pytest.raises(ValueError):
            expected_workload_error(identity_strategy(4), rank_deficient, 1.0)

    def test_prefix_workload_equals_prefix_strategy(self):
        assert np.array_equal(prefix_workload(5), prefix_strategy(5))
