"""Tests quantifying the Section 3.2 attack and the Blowfish defense."""

import numpy as np
import pytest

from repro.analysis.attacks import attack_variance, chain_constraint_attack, chain_sums


class TestChainSums:
    def test_values(self):
        assert chain_sums(np.array([3.0, 5.0, 2.0])).tolist() == [8.0, 7.0]

    def test_needs_two(self):
        with pytest.raises(ValueError):
            chain_sums(np.array([1.0]))


class TestAttack:
    def test_noiseless_reconstruction_is_exact(self):
        counts = np.array([4.0, 1.0, 7.0, 3.0, 5.0])
        sums = chain_sums(counts)
        recovered = chain_constraint_attack(counts, sums)
        assert np.allclose(recovered, counts)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            chain_constraint_attack(np.zeros(3), np.zeros(3))

    def test_attack_is_unbiased(self, rng):
        counts = np.array([10.0, 20.0, 5.0, 8.0])
        sums = chain_sums(counts)
        recon = np.mean(
            [
                chain_constraint_attack(counts + rng.laplace(0, 4.0, 4), sums)
                for _ in range(4000)
            ],
            axis=0,
        )
        assert np.allclose(recon, counts, atol=0.5)

    def test_variance_shrinks_like_one_over_k(self, rng):
        """The paper's quantitative claim: averaging k estimators leaves
        variance ~ 2 S^2/(k eps^2) — far below the per-count 2 S^2/eps^2."""
        eps, sensitivity = 0.5, 2.0
        scale = sensitivity / eps
        k = 16
        counts = rng.integers(0, 50, k).astype(np.float64)
        sums = chain_sums(counts)
        errors = []
        for trial in range(3000):
            local = np.random.default_rng(trial)
            noisy = counts + local.laplace(0, scale, k)
            errors.append(chain_constraint_attack(noisy, sums)[0] - counts[0])
        measured = float(np.var(errors))
        predicted = attack_variance(k, eps, sensitivity)
        naive = 2 * scale**2
        assert measured == pytest.approx(predicted, rel=0.25)
        assert measured < naive / (k / 2)  # the breach: k-fold improvement

    def test_blowfish_calibration_cancels_the_gain(self, rng):
        """Noise calibrated to the constrained sensitivity (which grows
        with the chain; Section 8) leaves the attacker no better off than
        the nominal guarantee."""
        eps, k = 0.5, 8
        counts = rng.integers(0, 50, k).astype(np.float64)
        sums = chain_sums(counts)
        # the chain couples all k counts: S(h, P) scales with the chain
        # (policy-graph bound 2*max(alpha, xi) ~ 2k for this structure)
        blowfish_scale = (2.0 * k) / eps
        errors = []
        for trial in range(1500):
            local = np.random.default_rng(trial)
            noisy = counts + local.laplace(0, blowfish_scale, k)
            errors.append(chain_constraint_attack(noisy, sums)[0] - counts[0])
        measured = float(np.var(errors))
        per_count_dp = 2 * (2.0 / eps) ** 2
        # after averaging, the attacker still faces at least the noise a
        # single DP count would have had — the attack gains nothing net
        assert measured >= per_count_dp

    def test_attack_variance_validation(self):
        with pytest.raises(ValueError):
            attack_variance(0, 1.0)
