"""Tests for the Section 7.1 CDF applications (quantiles, equi-depth
histograms, k-d index) as post-processing over released structures."""

import numpy as np
import pytest

from repro import Database, Domain, Policy
from repro.analysis.cdf import (
    KDNode,
    build_kd_index,
    equi_depth_histogram,
    estimate_quantile,
    estimate_quantiles,
    released_size,
)
from repro.mechanisms import OrderedHierarchicalMechanism, OrderedMechanism

HUGE_EPS = 1e9


@pytest.fixture
def db(rng):
    domain = Domain.integers("v", 64)
    return Database.from_indices(domain, rng.integers(0, 64, 2000))


@pytest.fixture
def exact_release(db):
    return OrderedMechanism(Policy.line(db.domain), HUGE_EPS).release(db, rng=0)


class TestAdapters:
    def test_released_size_both_mechanisms(self, db, exact_release):
        assert released_size(exact_release) == 64
        oh = OrderedHierarchicalMechanism(
            Policy.distance_threshold(db.domain, 8), HUGE_EPS
        ).release(db, rng=0)
        assert released_size(oh) == 64

    def test_released_size_rejects_unknown(self):
        with pytest.raises(TypeError):
            released_size(object())


class TestQuantiles:
    def test_exact_quantiles_match_truth(self, db, exact_release):
        cum = db.cumulative_histogram()
        for q in (0.1, 0.5, 0.9):
            est = estimate_quantile(exact_release, q)
            true = int(np.searchsorted(cum, q * db.n, side="left"))
            assert est == true

    def test_extremes(self, db, exact_release):
        assert estimate_quantile(exact_release, 0.0) == 0
        assert estimate_quantile(exact_release, 1.0) <= 63

    def test_validation(self, exact_release):
        with pytest.raises(ValueError):
            estimate_quantile(exact_release, 1.5)
        with pytest.raises(ValueError):
            estimate_quantile(exact_release, 0.5, total=0.0)

    def test_vector_version(self, exact_release):
        qs = estimate_quantiles(exact_release, [0.25, 0.5, 0.75])
        assert qs == sorted(qs)

    def test_noisy_quantiles_close(self, db):
        rel = OrderedMechanism(Policy.line(db.domain), 1.0).release(db, rng=0)
        cum = db.cumulative_histogram()
        true_median = int(np.searchsorted(cum, db.n / 2, side="left"))
        assert abs(estimate_quantile(rel, 0.5) - true_median) <= 3


class TestEquiDepth:
    def test_exact_buckets_balanced(self, db, exact_release):
        edges, counts = equi_depth_histogram(exact_release, 4)
        assert edges[0] == 0 and edges[-1] == 64
        assert len(counts) == 4
        assert sum(counts) == pytest.approx(db.n)
        # roughly n/4 per bucket (discretization tolerance)
        for c in counts:
            assert abs(c - db.n / 4) < db.n * 0.12

    def test_single_bucket(self, db, exact_release):
        edges, counts = equi_depth_histogram(exact_release, 1)
        assert edges == [0, 64]
        assert counts[0] == pytest.approx(db.n)

    def test_validation(self, exact_release):
        with pytest.raises(ValueError):
            equi_depth_histogram(exact_release, 0)

    def test_extreme_skew(self):
        domain = Domain.integers("v", 16)
        db = Database.from_indices(domain, np.zeros(100, dtype=np.int64))
        rel = OrderedMechanism(Policy.line(domain), HUGE_EPS).release(db, rng=0)
        edges, counts = equi_depth_histogram(rel, 4)
        assert edges == sorted(edges)
        assert sum(counts) == pytest.approx(100)


class TestKDIndex:
    def test_structure_on_uniform_data(self, db, exact_release):
        root = build_kd_index(exact_release, max_depth=3)
        assert isinstance(root, KDNode)
        assert root.lo == 0 and root.hi == 63
        assert root.count == pytest.approx(db.n)
        assert root.depth() <= 3
        leaves = root.leaves()
        # leaves tile the domain contiguously
        assert leaves[0].lo == 0 and leaves[-1].hi == 63
        for a, b in zip(leaves[:-1], leaves[1:]):
            assert b.lo == a.hi + 1
        # median splits: each leaf holds roughly n / #leaves
        counts = [l.count for l in leaves]
        assert max(counts) < 3 * (db.n / len(leaves))

    def test_leaf_counts_sum_to_total(self, exact_release, db):
        root = build_kd_index(exact_release, max_depth=4)
        assert sum(l.count for l in root.leaves()) == pytest.approx(db.n)

    def test_depth_zero_is_single_leaf(self, exact_release):
        root = build_kd_index(exact_release, max_depth=0)
        assert root.is_leaf

    def test_min_count_stops_splitting(self, db, exact_release):
        root = build_kd_index(exact_release, max_depth=10, min_count=db.n + 1)
        assert root.is_leaf

    def test_validation(self, exact_release):
        with pytest.raises(ValueError):
            build_kd_index(exact_release, max_depth=-1)

    def test_noisy_index_still_tiles(self, db):
        rel = OrderedMechanism(Policy.line(db.domain), 0.5).release(db, rng=3)
        root = build_kd_index(rel, max_depth=3)
        leaves = root.leaves()
        assert leaves[0].lo == 0 and leaves[-1].hi == 63
        for a, b in zip(leaves[:-1], leaves[1:]):
            assert b.lo == a.hi + 1
