"""Tests for error metrics and analytic bounds."""

import math

import numpy as np
import pytest

from repro.analysis import (
    hierarchical_range_error_estimate,
    laplace_cell_variance,
    laplace_histogram_total_error,
    mean_squared_error,
    oh_error_constants,
    oh_expected_range_error,
    optimal_budget_split,
    ordered_range_error_bound,
    random_range_queries,
    summarize_trials,
    svd_lower_bound_indicative,
    true_range_answers,
)


class TestMetrics:
    def test_mse(self):
        assert mean_squared_error(np.array([1.0, 2.0]), np.array([2.0, 4.0])) == 2.5
        with pytest.raises(ValueError):
            mean_squared_error(np.zeros(2), np.zeros(3))

    def test_random_ranges_valid(self, rng):
        los, his = random_range_queries(100, 500, rng)
        assert np.all(los <= his)
        assert los.min() >= 0 and his.max() < 100

    def test_true_range_answers(self):
        cum = np.array([1.0, 3.0, 3.0, 7.0])
        los = np.array([0, 1, 2])
        his = np.array([3, 2, 3])
        assert true_range_answers(cum, los, his).tolist() == [7.0, 2.0, 4.0]

    def test_summarize(self):
        s = summarize_trials(np.array([1.0, 2.0, 3.0, 4.0]))
        assert s["mean"] == 2.5
        assert s["trials"] == 4
        assert s["q25"] <= s["mean"] <= s["q75"]


class TestBounds:
    def test_laplace_formulas(self):
        # Section 2: 8|T|/eps^2
        assert laplace_histogram_total_error(100, 2.0) == pytest.approx(8 * 100 / 4.0)
        assert laplace_cell_variance(1.0) == 8.0
        with pytest.raises(ValueError):
            laplace_cell_variance(0.0)

    def test_theorem_71_bound(self):
        assert ordered_range_error_bound(1.0) == 4.0
        assert ordered_range_error_bound(1.0, sensitivity=3.0) == 36.0

    def test_hierarchical_matches_oh_end(self):
        est = hierarchical_range_error_estimate(4096, 1.0, fanout=16)
        _, c2 = oh_error_constants(4096, 4096, 16)
        assert est == pytest.approx(c2)

    def test_ordered_sits_below_svd_curve(self):
        """The paper's separation: O(1/eps^2) beats the DP lower bound."""
        for size in (256, 4096):
            assert ordered_range_error_bound(0.5) < svd_lower_bound_indicative(size, 0.5)

    def test_svd_trivial_domain(self):
        assert svd_lower_bound_indicative(1, 1.0) == 0.0

    def test_oh_split_consistency(self):
        eps_s, eps_h = optimal_budget_split(1000, 50, 16, 1.0)
        err = oh_expected_range_error(1000, 50, 16, eps_s, eps_h)
        assert math.isfinite(err) and err > 0
