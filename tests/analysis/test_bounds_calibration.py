"""Regression: the range cost model takes the *configured* fan-out.

``hierarchical_range_error_estimate`` used to default to the paper's
``f=16``; a mechanism configured with any other fan-out was then scored
with the wrong tree shape.  The model now requires the actual fan-out, and
its fan-out ranking is cross-checked against the measured OH sweep in
``benchmarks/results/ablation_fanout.csv`` (adult capital-loss domain,
value-theta 100, eps 0.5).
"""

from __future__ import annotations

import csv
from pathlib import Path

import pytest

from repro.analysis.bounds import (
    hierarchical_range_error_estimate,
    predicted_range_query_mse,
)

ABLATION_CSV = Path(__file__).parents[2] / "benchmarks" / "results" / "ablation_fanout.csv"
# the sweep's configuration (see benchmarks/bench_ablation_fanout.py)
ADULT_SIZE = 4357
THETA = 100
EPSILON = 0.5


def _measured() -> dict[int, float]:
    with ABLATION_CSV.open() as fh:
        return {int(float(row["fanout"])): float(row["mean"]) for row in csv.DictReader(fh)}


def test_fanout_is_required_not_assumed():
    with pytest.raises(TypeError):
        hierarchical_range_error_estimate(4096, 1.0)  # no silent f=16


def test_fanout_is_validated():
    with pytest.raises(ValueError, match="fanout"):
        hierarchical_range_error_estimate(4096, 1.0, fanout=1)


def test_estimate_moves_with_the_fanout():
    values = {f: hierarchical_range_error_estimate(4096, 1.0, fanout=f) for f in (2, 4, 16)}
    assert len(set(values.values())) == 3
    assert values[2] > values[16]


def test_model_ranking_tracks_the_measured_fanout_sweep():
    measured = _measured()
    assert set(measured) == {2, 4, 8, 16, 32}
    predicted = {
        f: predicted_range_query_mse(
            "ordered-hierarchical",
            ADULT_SIZE,
            EPSILON,
            theta=THETA,
            fanout=f,
            consistent=True,
        )
        for f in measured
    }
    # the measured optimum (f=16, the paper's choice) is the model's optimum,
    # and the measured worst (f=2) is the model's worst
    assert min(predicted, key=predicted.get) == min(measured, key=measured.get)
    assert max(predicted, key=predicted.get) == max(measured, key=measured.get)
