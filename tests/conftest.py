"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Attribute, Database, Domain, Policy


@pytest.fixture(autouse=True)
def _reset_obs():
    """Observability state is process-global; never let one test's
    ``obs.configure`` leak into the next."""
    yield
    from repro import obs

    obs.configure(metrics=False, tracing=False)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_domain():
    """A 3-value ordered domain."""
    return Domain.integers("v", 3)


@pytest.fixture
def small_ordered_domain():
    """A 10-value ordered domain."""
    return Domain.integers("v", 10)


@pytest.fixture
def grid_domain():
    """A 4x3 integer grid."""
    return Domain.grid([4, 3])


@pytest.fixture
def abc_domain():
    """The paper's Example 8.1 domain: A1={a1,a2} x A2={b1,b2} x A3={c1,c2,c3}."""
    return Domain(
        [
            Attribute("A1", ["a1", "a2"]),
            Attribute("A2", ["b1", "b2"]),
            Attribute("A3", ["c1", "c2", "c3"]),
        ]
    )


@pytest.fixture
def small_db(small_ordered_domain, rng):
    return Database.from_indices(
        small_ordered_domain, rng.integers(0, 10, size=200)
    )


def make_db(domain, indices):
    return Database.from_indices(domain, indices)
