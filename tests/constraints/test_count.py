"""Tests for lift/lower analysis and sparsity (Definitions 8.1/8.2)."""

import numpy as np
import pytest

from repro import AttributeGraph, CountQuery, Domain, ExplicitGraph, FullDomainGraph
from repro.constraints import (
    is_sparse,
    lifted_queries,
    lowered_queries,
    sparsity_violations,
    support_matrix,
)
from repro.constraints.marginals import marginal_queries


class TestLiftLower:
    def test_example_8_1(self, abc_domain):
        """The paper's worked Example 8.1."""
        queries = marginal_queries(abc_domain, ["A1", "A2"])
        x = abc_domain.index_of(("a1", "b1", "c1"))
        y = abc_domain.index_of(("a2", "b2", "c2"))
        # (x, y) lifts q4 (a2,b2) and lowers q1 (a1,b1)
        assert lifted_queries(queries, x, y) == [3]
        assert lowered_queries(queries, x, y) == [0]
        # a same-cell change lifts/lowers nothing
        u = abc_domain.index_of(("a1", "b2", "c1"))
        v = abc_domain.index_of(("a1", "b2", "c2"))
        assert lifted_queries(queries, u, v) == []
        assert lowered_queries(queries, u, v) == []

    def test_support_matrix(self, abc_domain):
        queries = marginal_queries(abc_domain, ["A1"])
        m = support_matrix(queries)
        assert m.shape == (2, 12)
        assert np.all(m.sum(axis=0) == 1)  # marginal cells partition T

    def test_support_matrix_empty(self):
        with pytest.raises(ValueError):
            support_matrix([])


class TestSparsity:
    def test_marginal_sparse_wrt_full_domain(self, abc_domain):
        """Example 8.1's conclusion: the 2-D marginal is sparse w.r.t. K."""
        queries = marginal_queries(abc_domain, ["A1", "A2"])
        assert is_sparse(queries, FullDomainGraph(abc_domain))

    def test_marginal_sparse_wrt_attribute_graph(self, abc_domain):
        queries = marginal_queries(abc_domain, ["A1", "A2"])
        assert is_sparse(queries, AttributeGraph(abc_domain))

    def test_overlapping_supports_not_sparse(self, small_ordered_domain):
        # two overlapping prefix queries: one change can lift both
        q1 = CountQuery.from_mask(small_ordered_domain, np.arange(10) >= 3, "tail3")
        q2 = CountQuery.from_mask(small_ordered_domain, np.arange(10) >= 6, "tail6")
        graph = FullDomainGraph(small_ordered_domain)
        assert not is_sparse([q1, q2], graph)
        violations = sparsity_violations([q1, q2], graph)
        assert violations
        x, y, n_lift, n_lower = violations[0]
        assert max(n_lift, n_lower) > 1

    def test_sparse_wrt_restricted_graph(self, small_ordered_domain):
        # the same overlapping queries ARE sparse w.r.t. a graph whose only
        # edge never crosses both boundaries
        q1 = CountQuery.from_mask(small_ordered_domain, np.arange(10) >= 3, "tail3")
        q2 = CountQuery.from_mask(small_ordered_domain, np.arange(10) >= 6, "tail6")
        graph = ExplicitGraph(small_ordered_domain, [(0, 4)])
        assert is_sparse([q1, q2], graph)

    def test_violation_report_cap(self, small_ordered_domain):
        q1 = CountQuery.from_mask(small_ordered_domain, np.arange(10) >= 1, "t1")
        q2 = CountQuery.from_mask(small_ordered_domain, np.arange(10) >= 2, "t2")
        graph = FullDomainGraph(small_ordered_domain)
        assert len(sparsity_violations([q1, q2], graph, max_report=3)) <= 3
