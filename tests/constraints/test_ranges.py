"""Tests for rectangle range constraints on grids (Section 8.2.3)."""

import numpy as np
import pytest

from repro import Database, Domain
from repro.constraints import (
    Rectangle,
    max_component_size,
    rectangle_distance,
    rectangle_graph,
    rectangle_query,
    rectangles_disjoint,
)


class TestRectangle:
    def test_validation(self):
        with pytest.raises(ValueError):
            Rectangle([2], [1])
        with pytest.raises(ValueError):
            Rectangle([0, 0], [1])

    def test_point_detection(self):
        assert Rectangle([3, 4], [3, 4]).is_point
        assert not Rectangle([3, 4], [3, 5]).is_point

    def test_intersects(self):
        a = Rectangle([0, 0], [2, 2])
        assert a.intersects(Rectangle([2, 2], [4, 4]))
        assert not a.intersects(Rectangle([3, 0], [4, 2]))


class TestRectangleQuery:
    def test_counts_inside(self):
        d = Domain.grid([5, 5])
        q = rectangle_query(d, Rectangle([1, 1], [3, 3]))
        db = Database.from_values(d, [(0, 0), (1, 1), (2, 3), (4, 4)])
        assert q(db)[0] == 2

    def test_bounds_checked(self):
        d = Domain.grid([5, 5])
        with pytest.raises(ValueError):
            rectangle_query(d, Rectangle([0, 0], [5, 4]))
        with pytest.raises(ValueError):
            rectangle_query(d, Rectangle([0], [4]))


class TestDistances:
    def test_overlapping_is_zero(self):
        assert rectangle_distance(Rectangle([0, 0], [2, 2]), Rectangle([1, 1], [3, 3])) == 0.0

    def test_l1_gap(self):
        a = Rectangle([0, 0], [1, 1])
        b = Rectangle([4, 3], [5, 5])
        assert rectangle_distance(a, b) == (4 - 1) + (3 - 1)

    def test_linf_gap(self):
        a = Rectangle([0, 0], [1, 1])
        b = Rectangle([4, 3], [5, 5])
        assert rectangle_distance(a, b, p=np.inf) == 3.0

    def test_disjointness(self):
        rects = [Rectangle([0, 0], [1, 1]), Rectangle([2, 2], [3, 3])]
        assert rectangles_disjoint(rects)
        rects.append(Rectangle([1, 1], [2, 2]))
        assert not rectangles_disjoint(rects)


class TestRectangleGraph:
    def test_components(self):
        rects = [
            Rectangle([0, 0], [1, 1]),
            Rectangle([3, 0], [4, 1]),   # distance 1 from the first
            Rectangle([9, 9], [9, 9]),   # far away
        ]
        g = rectangle_graph(rects, theta=2.0)
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 2)
        assert max_component_size(g) == 2

    def test_empty(self):
        import networkx as nx

        assert max_component_size(nx.Graph()) == 0
