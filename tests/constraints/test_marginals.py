"""Tests for marginal constraints (Definition 8.4)."""

import numpy as np
import pytest

from repro import Database, Domain, Attribute
from repro.constraints import MarginalConstraintSet, marginal_counts, marginal_queries


class TestMarginalQueries:
    def test_query_count_is_size_c(self, abc_domain):
        assert len(marginal_queries(abc_domain, ["A1"])) == 2
        assert len(marginal_queries(abc_domain, ["A1", "A2"])) == 4
        assert len(marginal_queries(abc_domain, ["A1", "A3"])) == 6

    def test_cells_partition_domain(self, abc_domain):
        queries = marginal_queries(abc_domain, ["A2", "A3"])
        total = np.zeros(abc_domain.size, dtype=int)
        for q in queries:
            total += q.mask.astype(int)
        assert np.all(total == 1)

    def test_names_identify_cells(self, abc_domain):
        queries = marginal_queries(abc_domain, ["A1"])
        assert "A1='a1'" in queries[0].name

    def test_validation(self, abc_domain):
        with pytest.raises(ValueError):
            marginal_queries(abc_domain, [])
        with pytest.raises(ValueError):
            marginal_queries(abc_domain, ["A1", "A1"])
        with pytest.raises(KeyError):
            marginal_queries(abc_domain, ["missing"])


class TestMarginalCounts:
    def test_counts(self, abc_domain):
        db = Database.from_values(
            abc_domain,
            [("a1", "b1", "c1"), ("a1", "b2", "c1"), ("a2", "b2", "c3")],
        )
        counts = marginal_counts(db, ["A1"])
        assert counts.tolist() == [2, 1]
        counts2 = marginal_counts(db, ["A1", "A2"])
        assert counts2.sum() == 3


class TestMarginalConstraintSet:
    def test_holds_on_source(self, abc_domain):
        db = Database.from_values(
            abc_domain, [("a1", "b1", "c1"), ("a2", "b2", "c3")]
        )
        cs = MarginalConstraintSet(abc_domain, [["A1", "A2"]], db)
        assert cs.satisfied_by(db)
        moved = db.replace(0, abc_domain.index_of(("a2", "b1", "c1")))
        assert not cs.satisfied_by(moved)
        within_cell = db.replace(0, abc_domain.index_of(("a1", "b1", "c2")))
        assert cs.satisfied_by(within_cell)

    def test_sizes(self, abc_domain):
        db = Database.from_values(abc_domain, [("a1", "b1", "c1")])
        cs = MarginalConstraintSet(abc_domain, [["A1"], ["A2"]], db)
        assert cs.sizes() == [2, 2]

    def test_rejects_overlapping_marginals(self, abc_domain):
        db = Database.from_values(abc_domain, [("a1", "b1", "c1")])
        with pytest.raises(ValueError, match="two marginals"):
            MarginalConstraintSet(abc_domain, [["A1", "A2"], ["A2"]], db)

    def test_rejects_full_attribute_set(self, abc_domain):
        db = Database.from_values(abc_domain, [("a1", "b1", "c1")])
        with pytest.raises(ValueError, match="proper subsets"):
            MarginalConstraintSet(abc_domain, [["A1", "A2", "A3"]], db)
