"""Tests for the closed-form constrained sensitivities (Theorems 8.4-8.6)
and the dispatcher, each validated against exact brute force where feasible.
"""

import numpy as np
import pytest

from repro import Attribute, Database, Domain, Policy
from repro.constraints import (
    MarginalConstraintSet,
    Rectangle,
    constrained_histogram_sensitivity,
    disjoint_marginals_attribute_sensitivity,
    grid_distance_threshold_sensitivity,
    marginal_full_domain_sensitivity,
)
from repro.core.sensitivity import brute_force_sensitivity


@pytest.fixture
def domain_2x2():
    return Domain([Attribute("A1", ["a1", "a2"]), Attribute("A2", ["b1", "b2"])])


class TestTheorem84:
    def test_formula(self, abc_domain):
        assert marginal_full_domain_sensitivity(abc_domain, ["A1", "A2"]) == 8.0
        assert marginal_full_domain_sensitivity(abc_domain, ["A3"]) == 6.0

    def test_rejects_full_attribute_set(self, abc_domain):
        with pytest.raises(ValueError):
            marginal_full_domain_sensitivity(abc_domain, ["A1", "A2", "A3"])

    def test_brute_force_agreement(self, domain_2x2):
        db = Database.from_values(
            domain_2x2, [("a1", "b1"), ("a1", "b2"), ("a2", "b1")]
        )
        cs = MarginalConstraintSet(domain_2x2, [["A1"]], db)
        policy = Policy.full_domain(domain_2x2, cs)
        exact = brute_force_sensitivity(lambda d: d.histogram(), policy, 3)
        assert exact == marginal_full_domain_sensitivity(domain_2x2, ["A1"]) == 4.0


class TestTheorem85:
    def test_formula(self, abc_domain):
        assert (
            disjoint_marginals_attribute_sensitivity(abc_domain, [["A1"], ["A3"]])
            == 2 * 3
        )

    def test_validation(self, abc_domain):
        with pytest.raises(ValueError, match="disjoint"):
            disjoint_marginals_attribute_sensitivity(abc_domain, [["A1"], ["A1"]])
        with pytest.raises(ValueError):
            disjoint_marginals_attribute_sensitivity(abc_domain, [])
        with pytest.raises(ValueError, match="proper"):
            disjoint_marginals_attribute_sensitivity(abc_domain, [["A1", "A2", "A3"]])

    def test_brute_force_agreement(self, domain_2x2):
        """Attribute secrets + one 1-D marginal on a 2x2 domain."""
        db = Database.from_values(
            domain_2x2, [("a1", "b1"), ("a1", "b2"), ("a2", "b1")]
        )
        cs = MarginalConstraintSet(domain_2x2, [["A1"]], db)
        policy = Policy.attribute(domain_2x2, cs)
        exact = brute_force_sensitivity(lambda d: d.histogram(), policy, 3)
        assert exact == disjoint_marginals_attribute_sensitivity(domain_2x2, [["A1"]])


class TestTheorem86:
    def test_formula_component_structure(self):
        rects = [
            Rectangle([0, 0], [1, 1]),
            Rectangle([3, 0], [4, 1]),
            Rectangle([9, 9], [9, 9]),
        ]
        # theta=2 joins the first two: maxcomp = 2 -> bound 6
        assert grid_distance_threshold_sensitivity(rects, theta=2.0) == 6.0
        # theta small: singleton components -> bound 4
        assert grid_distance_threshold_sensitivity(rects, theta=0.5) == 4.0

    def test_requires_disjoint(self):
        rects = [Rectangle([0, 0], [2, 2]), Rectangle([1, 1], [3, 3])]
        with pytest.raises(ValueError, match="disjoint"):
            grid_distance_threshold_sensitivity(rects, theta=1.0)

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            grid_distance_threshold_sensitivity([], theta=1.0)

    def test_brute_force_bound_holds_1d(self):
        """1-D grid, two disjoint interval constraints, theta secrets."""
        from repro import ConstraintSet
        from repro.constraints.ranges import rectangle_query

        domain = Domain.grid([6])
        rects = [Rectangle([0], [1]), Rectangle([3], [4])]
        queries = [rectangle_query(domain, r) for r in rects]
        base = Database.from_indices(domain, [0, 3, 5])
        policy = Policy.distance_threshold(domain, 2.0).with_constraints(
            ConstraintSet.from_database(queries, base)
        )
        exact = brute_force_sensitivity(lambda d: d.histogram(), policy, 3)
        bound = grid_distance_threshold_sensitivity(rects, theta=2.0)
        assert exact <= bound


class TestDispatcher:
    def test_unconstrained(self, small_ordered_domain):
        assert (
            constrained_histogram_sensitivity(
                Policy.differential_privacy(small_ordered_domain)
            )
            == 2.0
        )

    def test_marginal_full_domain_route(self, domain_2x2):
        db = Database.from_values(domain_2x2, [("a1", "b1")])
        cs = MarginalConstraintSet(domain_2x2, [["A1"]], db)
        policy = Policy.full_domain(domain_2x2, cs)
        assert constrained_histogram_sensitivity(policy) == 4.0

    def test_marginal_attribute_route(self, domain_2x2):
        db = Database.from_values(domain_2x2, [("a1", "b1")])
        cs = MarginalConstraintSet(domain_2x2, [["A1"], ["A2"]], db)
        policy = Policy.attribute(domain_2x2, cs)
        assert constrained_histogram_sensitivity(policy) == 4.0

    def test_generic_policy_graph_route(self, abc_domain):
        """A plain ConstraintSet routes through the policy graph."""
        from repro import ConstraintSet
        from repro.constraints.marginals import marginal_queries

        queries = marginal_queries(abc_domain, ["A1", "A2"])
        base = Database.from_values(abc_domain, [("a1", "b1", "c1")] * 4)
        cs = ConstraintSet.from_database(queries, base)
        policy = Policy.full_domain(abc_domain, cs)
        assert constrained_histogram_sensitivity(policy) == 8.0  # Figure 3
