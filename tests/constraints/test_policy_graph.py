"""Tests for the policy graph (Definition 8.3, Theorem 8.2, Figure 3)."""

import numpy as np
import pytest

from repro import (
    Attribute,
    ConstraintSet,
    CountQuery,
    Database,
    Domain,
    ExplicitGraph,
    FullDomainGraph,
    Policy,
)
from repro.constraints import V_MINUS, V_PLUS, PolicyGraph
from repro.constraints.marginals import MarginalConstraintSet, marginal_queries
from repro.core.sensitivity import brute_force_sensitivity


class TestFigure3:
    """The paper's worked example: 2x2x3 domain, A1xA2 marginal, K secrets."""

    @pytest.fixture
    def pg(self, abc_domain):
        queries = marginal_queries(abc_domain, ["A1", "A2"])
        return PolicyGraph(FullDomainGraph(abc_domain), queries)

    def test_query_subgraph_is_complete(self, pg):
        g = pg.to_networkx()
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert g.has_edge(a, b)

    def test_only_v_plus_v_minus_special_edge(self, pg):
        """Every value lies in some marginal cell, so no change lifts
        without lowering: v+/v- touch nothing but each other."""
        g = pg.to_networkx()
        assert g.has_edge(V_PLUS, V_MINUS)
        assert g.out_degree(V_PLUS) == 1
        assert g.in_degree(V_MINUS) == 1

    def test_alpha_and_xi(self, pg):
        assert pg.alpha() == 4
        assert pg.xi() == 1

    def test_sensitivity_bound_is_8(self, pg):
        assert pg.sensitivity_bound() == 8.0

    def test_corollary_bound(self, pg):
        assert pg.corollary_bound() == 8.0  # 2 * |Q| happens to coincide


class TestConstructionPaths:
    def test_scan_path_matches_full_domain_fast_path(self, abc_domain):
        """The generic edge-scan and the support-set fast path must agree."""
        queries = marginal_queries(abc_domain, ["A1", "A2"])
        fast = PolicyGraph(FullDomainGraph(abc_domain), queries).to_networkx()
        # force the generic path with an explicit complete graph
        complete_edges = [
            (i, j)
            for i in range(abc_domain.size)
            for j in range(i + 1, abc_domain.size)
        ]
        slow = PolicyGraph(
            ExplicitGraph(abc_domain, complete_edges), queries
        ).to_networkx()
        assert set(fast.edges()) == set(slow.edges())

    def test_v_plus_edges_with_uncovered_cells(self, small_ordered_domain):
        """Values outside every support create genuine v+ / v- edges."""
        q = CountQuery.from_mask(small_ordered_domain, np.arange(10) < 3, "low")
        pg = PolicyGraph(FullDomainGraph(small_ordered_domain), [q])
        g = pg.to_networkx()
        assert g.has_edge(V_PLUS, 0)
        assert g.has_edge(0, V_MINUS)
        assert pg.xi() == 2  # v+ -> q -> v-
        assert pg.alpha() == 0  # single query, no cycle
        assert pg.sensitivity_bound() == 4.0

    def test_non_sparse_rejected(self, small_ordered_domain):
        q1 = CountQuery.from_mask(small_ordered_domain, np.arange(10) >= 3, "t3")
        q2 = CountQuery.from_mask(small_ordered_domain, np.arange(10) >= 6, "t6")
        with pytest.raises(ValueError, match="not sparse"):
            PolicyGraph(FullDomainGraph(small_ordered_domain), [q1, q2])

    def test_empty_queries_rejected(self, small_ordered_domain):
        with pytest.raises(ValueError):
            PolicyGraph(FullDomainGraph(small_ordered_domain), [])

    def test_restricted_graph_drops_edges(self, small_ordered_domain):
        """With a line graph, only boundary-crossing steps create edges."""
        half = CountQuery.from_mask(small_ordered_domain, np.arange(10) < 5, "low")
        rest = CountQuery.from_mask(small_ordered_domain, np.arange(10) >= 5, "high")
        pg = PolicyGraph(Policy.line(small_ordered_domain).graph, [half, rest])
        g = pg.to_networkx()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert pg.alpha() == 2
        assert pg.sensitivity_bound() == 4.0


class TestTheoremValidation:
    """The money tests: Theorem 8.2's bound vs exact brute force."""

    def test_single_marginal_2x2(self):
        domain = Domain([Attribute("A1", ["a1", "a2"]), Attribute("A2", ["b1", "b2"])])
        queries = marginal_queries(domain, ["A1"])
        base = Database.from_values(domain, [("a1", "b1"), ("a1", "b2"), ("a2", "b1")])
        policy = Policy.full_domain(
            domain, ConstraintSet.from_database(queries, base)
        )
        pg = PolicyGraph(policy.graph, queries)
        bound = pg.sensitivity_bound()
        exact = brute_force_sensitivity(lambda db: db.histogram(), policy, 3)
        assert bound == 4.0
        assert exact == bound  # tight (Theorem 8.4)

    def test_partial_coverage_bound_holds(self, tiny_domain):
        """Single count query covering part of the domain: bound >= exact."""
        q = CountQuery.from_mask(tiny_domain, np.array([True, False, False]), "zero")
        base = Database.from_indices(tiny_domain, [0, 1, 2])
        policy = Policy.full_domain(
            tiny_domain, ConstraintSet.from_database([q], base)
        )
        pg = PolicyGraph(policy.graph, [q])
        exact = brute_force_sensitivity(lambda db: db.histogram(), policy, 3)
        assert exact <= pg.sensitivity_bound()
        # the constraint pins cell 0 exactly, so a neighbor can only shuffle
        # one unit between the two free cells: the bound is not tight here
        assert exact == 2.0
        assert pg.sensitivity_bound() == 4.0

    def test_line_graph_constrained_bound_holds(self):
        domain = Domain.integers("v", 4)
        half = CountQuery.from_mask(domain, np.arange(4) < 2, "low")
        base = Database.from_indices(domain, [0, 1, 2])
        policy = Policy.line(domain).with_constraints(
            ConstraintSet.from_database([half], base)
        )
        pg = PolicyGraph(policy.graph, [half])
        exact = brute_force_sensitivity(lambda db: db.histogram(), policy, 3)
        assert exact <= pg.sensitivity_bound()


class TestCorollary83Erratum:
    """The printed Corollary 8.3 (S <= 2 max{|Q|, 1}) fails when values lie
    outside every query support: the v+ -> q -> v- path gives xi = |Q| + 1
    and the exact sensitivity matches Theorem 8.2, not the corollary."""

    @pytest.fixture
    def instance(self):
        domain = Domain.integers("v", 4)
        q = CountQuery.from_mask(
            domain, np.array([True, True, False, False]), "covered"
        )
        base = Database.from_indices(domain, [0, 1, 2])
        policy = Policy.full_domain(
            domain, ConstraintSet.from_database([q], base)
        )
        return policy, q

    def test_exact_sensitivity_violates_printed_corollary(self, instance):
        policy, q = instance
        pg = PolicyGraph(policy.graph, [q])
        exact = brute_force_sensitivity(lambda db: db.histogram(), policy, 3)
        assert exact == 4.0
        assert exact > pg.corollary_bound()  # the erratum
        assert exact == pg.sensitivity_bound()  # Theorem 8.2 is right

    def test_safe_corollary_holds(self, instance):
        policy, q = instance
        pg = PolicyGraph(policy.graph, [q])
        assert pg.sensitivity_bound() <= pg.safe_corollary_bound()

    def test_printed_corollary_holds_for_covering_queries(self, abc_domain):
        """With supports covering the domain (e.g. a marginal), xi = 1 and
        the printed corollary is valid."""
        queries = marginal_queries(abc_domain, ["A1", "A2"])
        pg = PolicyGraph(FullDomainGraph(abc_domain), queries)
        assert pg.sensitivity_bound() <= pg.corollary_bound()


class TestSearchAlgorithms:
    def test_longest_cycle_on_known_graph(self, small_ordered_domain):
        """Two disjoint 2-cycles plus a 3-cycle: alpha = 3."""
        import networkx as nx

        from repro.constraints.policy_graph import _longest_cycle, _longest_path

        g = nx.DiGraph()
        g.add_edges_from([(0, 1), (1, 0), (2, 3), (3, 4), (4, 2)])
        assert _longest_cycle(g) == 3

        h = nx.DiGraph()
        h.add_edges_from([("s", 0), (0, 1), (1, "t"), ("s", "t")])
        assert _longest_path(h, "s", "t") == 3
        assert _longest_path(h, "s", "missing") == 0
