"""Property-based validation of Theorem 8.2: on randomly generated sparse
constraint systems, the policy-graph bound always dominates the exact
brute-force sensitivity computed from Definition 4.1 neighbors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConstraintSet, CountQuery, Database, Domain, Policy
from repro.constraints import PolicyGraph, is_sparse
from repro.core.sensitivity import brute_force_sensitivity


def _disjoint_support_queries(domain, assignment):
    """Build one CountQuery per label > 0 from a per-cell label vector.

    Disjoint supports are automatically sparse w.r.t. every secret graph:
    a change lowers at most the source cell's query and lifts at most the
    destination cell's.
    """
    labels = sorted({a for a in assignment if a > 0})
    queries = []
    for lab in labels:
        mask = np.array([a == lab for a in assignment])
        queries.append(CountQuery.from_mask(domain, mask, name=f"q{lab}"))
    return queries


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_bound_dominates_brute_force_full_domain(data):
    size = data.draw(st.integers(min_value=3, max_value=5))
    domain = Domain.integers("v", size)
    # assign each cell to query 1, query 2, or no query (0)
    assignment = data.draw(
        st.lists(st.integers(min_value=0, max_value=2), min_size=size, max_size=size)
    )
    queries = _disjoint_support_queries(domain, assignment)
    if not queries:
        return
    policy_graph_graph = Policy.differential_privacy(domain).graph
    assert is_sparse(queries, policy_graph_graph)
    base_indices = data.draw(
        st.lists(st.integers(min_value=0, max_value=size - 1), min_size=3, max_size=3)
    )
    base = Database.from_indices(domain, base_indices)
    policy = Policy.full_domain(
        domain, ConstraintSet.from_database(queries, base)
    )
    pg = PolicyGraph(policy.graph, queries)
    bound = pg.sensitivity_bound()
    exact = brute_force_sensitivity(lambda db: db.histogram(), policy, 3)
    assert exact <= bound + 1e-9


@given(st.data())
@settings(max_examples=15, deadline=None)
def test_bound_dominates_brute_force_threshold_graph(data):
    size = data.draw(st.integers(min_value=3, max_value=5))
    theta = data.draw(st.integers(min_value=1, max_value=3))
    domain = Domain.integers("v", size)
    assignment = data.draw(
        st.lists(st.integers(min_value=0, max_value=2), min_size=size, max_size=size)
    )
    queries = _disjoint_support_queries(domain, assignment)
    if not queries:
        return
    graph = Policy.distance_threshold(domain, theta).graph
    assert is_sparse(queries, graph)
    base = Database.from_indices(
        domain,
        data.draw(
            st.lists(st.integers(min_value=0, max_value=size - 1), min_size=3, max_size=3)
        ),
    )
    policy = Policy.distance_threshold(domain, theta).with_constraints(
        ConstraintSet.from_database(queries, base)
    )
    pg = PolicyGraph(policy.graph, queries)
    exact = brute_force_sensitivity(lambda db: db.histogram(), policy, 3)
    assert exact <= pg.sensitivity_bound() + 1e-9


@given(st.data())
@settings(max_examples=15, deadline=None)
def test_safe_corollary_dominates_theorem_82(data):
    """The corrected 2(|Q|+1) bound always dominates Theorem 8.2.

    (The paper's printed Corollary 8.3, 2*max(|Q|,1), does NOT — see
    TestCorollary83Erratum in test_policy_graph.py.)
    """
    size = data.draw(st.integers(min_value=3, max_value=6))
    domain = Domain.integers("v", size)
    assignment = data.draw(
        st.lists(st.integers(min_value=0, max_value=3), min_size=size, max_size=size)
    )
    queries = _disjoint_support_queries(domain, assignment)
    if not queries:
        return
    pg = PolicyGraph(Policy.differential_privacy(domain).graph, queries)
    assert pg.sensitivity_bound() <= pg.safe_corollary_bound() + 1e-9
