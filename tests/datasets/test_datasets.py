"""Tests for the synthetic dataset substrate."""

import numpy as np
import pytest

from repro.datasets import (
    ADULT_N,
    CAPITAL_LOSS_DOMAIN_SIZE,
    CELL_KM,
    GRID_SHAPE,
    SKIN_N,
    TWITTER_N,
    adult_capital_loss_dataset,
    adult_capital_loss_domain,
    database_from_points,
    gaussian_clusters_dataset,
    indices_from_ranks,
    skin_dataset,
    skin_domain,
    twitter_dataset,
    twitter_domain,
    twitter_latitude_dataset,
    twitter_latitude_domain,
    unit_cube_domain,
)


class TestHelpers:
    def test_indices_from_ranks_matches_scalar(self, grid_domain):
        ranks = np.array([[0, 0], [3, 2], [1, 1]])
        idx = indices_from_ranks(grid_domain, ranks)
        for row, i in zip(ranks, idx):
            assert grid_domain.index_of_ranks(tuple(row)) == i

    def test_indices_from_ranks_validates(self, grid_domain):
        with pytest.raises(ValueError):
            indices_from_ranks(grid_domain, np.array([[0, 5]]))
        with pytest.raises(ValueError):
            indices_from_ranks(grid_domain, np.array([0, 1]))

    def test_database_from_points_clips(self):
        from repro import Domain

        d = Domain.uniform_grid([4], spacings=[1.0])
        db = database_from_points(
            d, np.array([[-2.0], [1.4], [99.0]]), np.array([1.0]), np.array([0.0])
        )
        assert list(db.indices) == [0, 1, 3]


class TestTwitter:
    def test_domain_geometry(self):
        d = twitter_domain()
        assert d.shape == GRID_SHAPE
        assert d.size == 120_000
        assert d.attributes[0].values[1] == CELL_KM

    def test_default_n_matches_paper(self):
        assert TWITTER_N == 193_563

    def test_generation_deterministic(self):
        a = twitter_dataset(2000, rng=7)
        b = twitter_dataset(2000, rng=7)
        assert a == b
        assert a != twitter_dataset(2000, rng=8)

    def test_clustered_not_uniform(self):
        db = twitter_dataset(20_000, rng=0)
        hist = db.histogram()
        occupied = np.count_nonzero(hist)
        # city clustering: mass concentrates in a small share of cells
        assert occupied < 0.5 * db.domain.size
        assert hist.max() > 20

    def test_latitude_projection(self):
        db2d = twitter_dataset(5000, rng=0)
        db1d = twitter_latitude_dataset(5000, rng=0)
        assert db1d.domain.size == GRID_SHAPE[0]
        assert db1d.n == db2d.n
        # the projection must preserve latitude ranks
        lat_ranks = db2d.indices // GRID_SHAPE[1]
        assert np.array_equal(np.sort(lat_ranks), np.sort(db1d.indices))

    def test_latitude_domain_spacing(self):
        d = twitter_latitude_domain()
        assert d.size == 400
        assert d.value_gap(0, 1) == CELL_KM


class TestSkin:
    def test_domain(self):
        d = skin_domain()
        assert d.shape == (256, 256, 256)
        assert d.diameter() == 3 * 255.0

    def test_default_n_matches_paper(self):
        assert SKIN_N == 245_057

    def test_values_in_range_and_multimodal(self):
        db = skin_dataset(20_000, rng=0)
        pts = db.points()
        assert pts.min() >= 0 and pts.max() <= 255
        # multi-modal: overall std well above any single component's
        assert pts.std(axis=0).min() > 30


class TestAdult:
    def test_domain_size_matches_paper(self):
        assert adult_capital_loss_domain().size == CAPITAL_LOSS_DOMAIN_SIZE == 4357
        assert ADULT_N == 48_842

    def test_sparsity(self):
        db = adult_capital_loss_dataset(rng=0)
        zero_frac = float(np.mean(db.indices == 0))
        assert 0.94 <= zero_frac <= 0.97
        # nonzero mass concentrates in the 1400-2600 band
        nz = db.indices[db.indices > 0]
        band = np.mean((nz >= 1300) & (nz <= 2700))
        assert band > 0.8

    def test_cumulative_histogram_has_few_distinct_values(self):
        """Section 7.1's sparsity payoff: p << |T| distinct prefix counts."""
        db = adult_capital_loss_dataset(rng=0)
        p = len(np.unique(db.cumulative_histogram()))
        assert p < 0.33 * db.domain.size

    def test_deterministic(self):
        assert adult_capital_loss_dataset(1000, rng=3) == adult_capital_loss_dataset(1000, rng=3)


class TestSynthetic:
    def test_unit_cube_domain(self):
        d = unit_cube_domain(dim=2, resolution=0.25)
        assert d.shape == (5, 5)
        assert d.attributes[0].values[-1] == pytest.approx(1.0)

    def test_paper_defaults(self):
        db = gaussian_clusters_dataset(rng=0)
        assert db.n == 1000
        pts = db.points()
        assert pts.shape == (1000, 4)
        assert pts.min() >= 0.0 and pts.max() <= 1.0

    def test_clusters_are_separable(self):
        from repro.mechanisms import lloyd_kmeans

        db = gaussian_clusters_dataset(n=500, k=2, dim=2, sigma=0.05, rng=1)
        result = lloyd_kmeans(db.points(), k=2, iterations=10, rng=0)
        # two tight blobs: within-cluster variance far below data variance
        total = ((db.points() - db.points().mean(axis=0)) ** 2).sum()
        assert result.objective < 0.5 * total

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            unit_cube_domain(resolution=0.0)
