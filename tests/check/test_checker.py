"""SpecChecker routing + the never-raise property.

The checker's contract with clients: *any* JSON value fed to
``check_spec`` produces a report — malformed input becomes ``SPEC001`` /
``SPEC002`` diagnostics, never an exception — and any spec ``from_spec``
accepts is checkable (hypothesis-driven round-trips below).
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.check import SpecChecker, check_specs
from repro.core.domain import Domain
from repro.core.policy import Policy


def test_non_dict_is_a_spec001():
    report = check_specs([1, 2, 3])
    assert not report.ok
    assert report.errors[0].code == "SPEC001"


def test_unknown_kind_is_a_spec002():
    report = check_specs({"kind": "mystery"})
    assert not report.ok
    assert report.errors[0].code == "SPEC002"
    assert report.errors[0].path == "spec.kind"


def test_malformed_policy_reports_the_offending_field():
    report = check_specs(
        {"kind": "policy", "version": 1, "graph": {"kind": "graph/nope", "version": 1}}
    )
    assert not report.ok
    diag = report.errors[0]
    assert diag.code == "SPEC001"
    assert diag.path.startswith("policy.graph")


def test_standalone_workload_needs_a_domain():
    report = check_specs({"kind": "workload", "groups": []})
    assert report.errors[0].code == "SPEC002"
    assert report.errors[0].path == "workload.domain"


def test_standalone_workload_with_domain_is_checked():
    report = check_specs(
        {
            "kind": "workload",
            "domain": Domain.integers("v", 16).to_spec(),
            "groups": [{"family": "range", "los": [0], "his": [5]}],
        }
    )
    assert report.ok, report.render_text()


def test_bad_section_does_not_hide_other_findings():
    # the plan budget fails to parse AND epsilon is bad: both are reported
    report = SpecChecker().check_request(
        {
            "policy": Policy.line(Domain.integers("v", 8)).to_spec(),
            "plan_budget": {"kind": "plan_budget", "total": -1.0},
            "epsilon": 0.0,
        }
    )
    codes = {d.code for d in report}
    assert {"SPEC001", "REQ101"} <= codes


# -- never-raise properties ---------------------------------------------------------

_json = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(10**6), max_value=10**6)
    | st.floats(allow_nan=True, allow_infinity=True)
    | st.text(max_size=8),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=8), children, max_size=3),
    max_leaves=12,
)


@settings(max_examples=60, deadline=None)
@given(_json)
def test_check_never_raises_on_arbitrary_json(value):
    report = SpecChecker().check_spec(value)
    json.dumps(report.to_dict())  # and the report itself always serializes


@settings(max_examples=30, deadline=None)
@given(
    size=st.integers(min_value=2, max_value=256),
    family=st.sampled_from(["line", "full", "distance"]),
    theta=st.floats(min_value=0.5, max_value=8.0),
    epsilon=st.floats(min_value=1e-3, max_value=10.0),
)
def test_check_never_raises_on_accepted_policy_specs(size, family, theta, epsilon):
    """Any policy ``from_spec`` would accept is checkable without raising."""
    domain = Domain.integers("v", size)
    if family == "line":
        policy = Policy.line(domain)
    elif family == "full":
        policy = Policy.full_domain(domain)
    else:
        policy = Policy.distance_threshold(domain, theta)
    spec = policy.to_spec()
    # round-trip through JSON exactly as the CLI would read it
    spec = json.loads(json.dumps(spec))
    assert Policy.from_spec(spec, "policy") is not None
    report = SpecChecker().check_request({"policy": spec, "epsilon": epsilon})
    assert report.ok, report.render_text()


@settings(max_examples=40, deadline=None)
@given(
    total=st.floats(min_value=1e-3, max_value=100.0),
    horizon=st.integers(min_value=1, max_value=1024),
    degradation=st.sampled_from(["strict", "drop_optional", "reuse_stale"]),
)
def test_check_never_raises_on_accepted_stream_budgets(total, horizon, degradation):
    from repro.stream.budget import StreamBudget

    spec = {
        "kind": "stream_budget",
        "total": total,
        "horizon": horizon,
        "degradation": degradation,
    }
    assert StreamBudget.from_spec(dict(spec)) is not None
    report = check_specs(spec)
    assert report.ok, report.render_text()
