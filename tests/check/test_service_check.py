"""The service's ``"check"`` op and opt-in strict admission."""

from __future__ import annotations

import numpy as np

from repro.api import BlowfishService
from repro.core.database import Database
from repro.core.domain import Attribute, Domain
from repro.core.graphs import DistanceThresholdGraph
from repro.core.policy import Policy


def _huge_constrained_policy_spec() -> dict:
    domain = Domain([Attribute("a", range(4096)), Attribute("b", range(4096))])
    spec = Policy(domain, DistanceThresholdGraph(domain, 1.5)).to_spec()
    spec["constraints"] = [
        {"query": {"kind": "count", "name": "low", "support": [0, 1, 2]}, "value": 3}
    ]
    return spec


def test_check_op_reports_without_serving():
    service = BlowfishService()
    response = service.handle(
        {
            "op": "check",
            "policy": _huge_constrained_policy_spec(),
            "epsilon": -1.0,
        }
    )
    assert response["ok"] is True  # the *check* succeeded
    report = response["report"]
    assert report["ok"] is False
    codes = {d["code"] for d in report["diagnostics"]}
    assert {"POL201", "REQ101"} <= codes
    # nothing was admitted: no engine, no session, no spend
    assert service.pool.stats()["size"] == 0


def test_check_op_resolves_streaming_from_the_dataset_registry():
    from repro.stream import synthetic_feed

    service = BlowfishService()
    stream, _batches = synthetic_feed(domain_size=16, ticks=2, per_tick=10, rng=0)
    service.register_stream("feed", stream)
    policy = Policy.line(Domain.integers("v", 16)).to_spec()
    workload = {
        "kind": "workload",
        "groups": [{"family": "range", "los": [0], "his": [5], "max_staleness": 2}],
    }
    # against the registered stream: max_staleness is meaningful -> no WRK403
    response = service.handle(
        {"op": "check", "policy": policy, "workload": workload,
         "dataset": {"name": "feed"}}
    )
    codes = {d["code"] for d in response["report"]["diagnostics"]}
    assert "WRK403" not in codes
    # against an inline (pinned) dataset the same workload draws the warning
    response = service.handle(
        {"op": "check", "policy": policy, "workload": workload,
         "dataset": {"indices": [0, 1, 2]}}
    )
    codes = {d["code"] for d in response["report"]["diagnostics"]}
    assert "WRK403" in codes


def test_strict_check_refuses_bad_policies_at_admission():
    domain = Domain.integers("v", 8)
    db = Database.from_indices(domain, np.zeros(50, dtype=int))
    request = {
        "policy": _huge_constrained_policy_spec(),
        "epsilon": 0.5,
        "dataset": {"indices": [0] * 10,
                    "domain": domain.to_spec()},
        "queries": [{"kind": "range", "lo": 0, "hi": 3}],
    }
    strict = BlowfishService(strict_check=True)
    response = strict.handle(dict(request))
    assert response["ok"] is False
    assert "POL201" in response["error"]["message"]
    assert response["error"]["field"].endswith("policy.graph")


def test_lenient_service_still_serves_warned_specs():
    # unconstrained line policy is clean; strict and lenient behave the same
    domain = Domain.integers("v", 8)
    request = {
        "policy": Policy.line(domain).to_spec(),
        "epsilon": 0.5,
        "dataset": {"indices": [0, 1, 2, 3], "domain": domain.to_spec()},
        "queries": [{"kind": "range", "lo": 0, "hi": 3}],
        "seed": 7,
    }
    for service in (BlowfishService(), BlowfishService(strict_check=True)):
        response = service.handle(dict(request))
        assert response["ok"] is True, response


def test_strict_check_refuses_infeasible_plan_budgets():
    domain = Domain.integers("v", 8)
    request = {
        "op": "plan",
        "policy": Policy.line(domain).to_spec(),
        "epsilon": 0.5,
        "dataset": {"indices": [0, 1, 2, 3], "domain": domain.to_spec()},
        "queries": [{"kind": "range", "lo": 0, "hi": 3}],
        "plan_budget": {"kind": "plan_budget", "total": 1.0,
                        "floors": {"a": 0.8, "b": 0.8}},
        "seed": 7,
    }
    response = BlowfishService(strict_check=True).handle(dict(request))
    assert response["ok"] is False
    assert "BUD301" in response["error"]["message"]


def test_unknown_op_message_names_check():
    response = BlowfishService().handle({"op": "frobnicate"})
    assert response["ok"] is False
    assert "check" in response["error"]["message"]
