"""Table-driven rule tests: one deliberately-bad spec per diagnostic code.

Every case feeds the checker a spec (or request) engineered to trip exactly
one rule and asserts the expected code lands at the expected path with the
expected severity — the contract clients build error UIs against.
"""

from __future__ import annotations

import pytest

from repro.check import SpecChecker
from repro.core.domain import Attribute, Domain
from repro.core.graphs import DistanceThresholdGraph, LineGraph
from repro.core.policy import Policy

DOM8 = Domain.integers("v", 8).to_spec()


def _policy(graph: dict, constraints: list | None = None) -> dict:
    spec = {"kind": "policy", "version": 1, "graph": graph}
    if constraints is not None:
        spec["constraints"] = constraints
    return spec


def _line(domain: dict = DOM8) -> dict:
    return {"kind": "graph/line", "version": 1, "domain": domain}


def _count(support, value, name="c") -> dict:
    return {"query": {"kind": "count", "name": name, "support": support}, "value": value}


def _huge_distance_policy(constraints=None) -> dict:
    """A 4096x4096-value distance-threshold policy: the product domain is
    unordered and too large to scan, so sensitivity hits EdgeScanRefused."""
    domain = Domain([Attribute("a", range(4096)), Attribute("b", range(4096))])
    spec = Policy(domain, DistanceThresholdGraph(domain, 1.5)).to_spec()
    if constraints is not None:
        spec["constraints"] = constraints
    return spec


CASES = [
    # (label, spec, streaming, severity, code, path)
    (
        "edge-scan-unconstrained-warns",
        _huge_distance_policy(),
        None,
        "warning",
        "POL201",
        "policy.graph",
    ),
    (
        "edge-scan-constrained-errors",
        _huge_distance_policy(constraints=[_count([0, 1, 2], 3)]),
        None,
        "error",
        "POL201",
        "policy.graph",
    ),
    (
        "pair-budget",
        _policy(
            {
                "kind": "graph/full",
                "version": 1,
                "domain": Domain.integers("v", 5000).to_spec(),
            },
            constraints=[_count([0, 1, 2], 3)],
        ),
        None,
        "warning",
        "POL202",
        "policy.constraints",
    ),
    (
        "edgeless-protects-nothing",
        _policy({"kind": "graph/edgeless", "version": 1, "domain": DOM8}),
        None,
        "warning",
        "POL210",
        "policy.graph",
    ),
    (
        "full-support-never-binds",
        _policy(_line(), constraints=[_count(list(range(8)), 3)]),
        None,
        "warning",
        "POL211",
        "policy.constraints[0]",
    ),
    (
        "duplicate-constraints",
        _policy(
            _line(),
            constraints=[_count([0, 1, 2], 3, "a"), _count([0, 1, 2], 3, "b")],
        ),
        None,
        "warning",
        "POL212",
        "policy.constraints[1]",
    ),
    (
        "negative-count-unsatisfiable",
        _policy(_line(), constraints=[_count([0, 1, 2], -1)]),
        None,
        "error",
        "POL213",
        "policy.constraints[0].value",
    ),
    (
        "plan-floors-overflow-total",
        {
            "kind": "plan_budget",
            "version": 1,
            "total": 1.0,
            "floors": {"a": 0.75, "b": 0.75},
        },
        None,
        "error",
        "BUD301",
        "plan_budget.floors",
    ),
    (
        "stream-floors-overflow-horizon",
        {"kind": "stream_budget", "total": 1.0, "horizon": 64, "floors": {"g": 0.5}},
        None,
        "error",
        "STR311",
        "plan_budget.floors",
    ),
    (
        "stream-window-wider-than-horizon",
        {"kind": "stream_budget", "total": 8.0, "horizon": 8, "window": 16},
        None,
        "warning",
        "STR312",
        "plan_budget.window",
    ),
]


@pytest.mark.parametrize(
    "spec,streaming,severity,code,path",
    [case[1:] for case in CASES],
    ids=[case[0] for case in CASES],
)
def test_bad_spec_is_flagged(spec, streaming, severity, code, path):
    report = SpecChecker().check_spec(spec, streaming=streaming)
    found = [d for d in report if d.code == code]
    assert found, f"expected {code}, got {[d.code for d in report]}"
    assert found[0].severity == severity
    assert found[0].path == path


REQUEST_CASES = [
    (
        "epsilon-not-positive",
        {"policy": _policy(_line()), "epsilon": -0.5},
        None,
        "error",
        "REQ101",
        "request.epsilon",
    ),
    (
        "floors-name-unknown-groups",
        {
            "policy": _policy(_line()),
            "workload": {
                "kind": "workload",
                "groups": [{"family": "range", "los": [0], "his": [5], "name": "g"}],
            },
            "plan_budget": {"kind": "plan_budget", "total": 1.0, "floors": {"nope": 0.1}},
        },
        None,
        "error",
        "REQ102",
        "request.plan_budget.floors",
    ),
    (
        "drop-optional-with-nothing-optional",
        {
            "policy": _policy(_line()),
            "workload": {
                "kind": "workload",
                "groups": [{"family": "range", "los": [0], "his": [5], "name": "g"}],
            },
            "plan_budget": {
                "kind": "plan_budget",
                "total": 1.0,
                "degradation": "drop_optional",
            },
        },
        None,
        "warning",
        "BUD302",
        "request.plan_budget.degradation",
    ),
    (
        "plan-total-over-session-budget",
        {
            "policy": _policy(_line()),
            "plan_budget": {"kind": "plan_budget", "total": 4.0},
            "budget": 1.0,
        },
        None,
        "warning",
        "BUD303",
        "request.plan_budget.total",
    ),
    (
        "stream-total-over-session-budget",
        {
            "policy": _policy(_line()),
            "plan_budget": {"kind": "stream_budget", "total": 8.0, "horizon": 8},
            "budget": 2.0,
        },
        True,
        "warning",
        "STR313",
        "request.plan_budget.total",
    ),
    (
        "empty-workload",
        {"policy": _policy(_line()), "workload": {"kind": "workload", "groups": []}},
        None,
        "error",
        "WRK401",
        "request.workload",
    ),
    (
        "empty-group",
        {
            "policy": _policy(_line()),
            "workload": {
                "kind": "workload",
                "groups": [{"family": "range", "los": [], "his": []}],
            },
        },
        None,
        "warning",
        "WRK401",
        "request.workload.groups[0]",
    ),
    (
        "duplicate-groups",
        {
            "policy": _policy(_line()),
            "workload": {
                "kind": "workload",
                "groups": [
                    {"family": "range", "los": [0], "his": [5], "name": "a"},
                    {"family": "range", "los": [0], "his": [5], "name": "b"},
                ],
            },
        },
        None,
        "warning",
        "WRK402",
        "request.workload.groups[1]",
    ),
    (
        "staleness-on-pinned-dataset",
        {
            "policy": _policy(_line()),
            "workload": {
                "kind": "workload",
                "groups": [
                    {"family": "range", "los": [0], "his": [5], "max_staleness": 3}
                ],
            },
        },
        False,
        "warning",
        "WRK403",
        "request.workload.groups[0].max_staleness",
    ),
    (
        "staleness-unknown-session-is-advisory",
        {
            "policy": _policy(_line()),
            "workload": {
                "kind": "workload",
                "groups": [
                    {"family": "range", "los": [0], "his": [5], "max_staleness": 3}
                ],
            },
        },
        None,
        "info",
        "WRK403",
        "request.workload.groups[0].max_staleness",
    ),
]


@pytest.mark.parametrize(
    "request_spec,streaming,severity,code,path",
    [case[1:] for case in REQUEST_CASES],
    ids=[case[0] for case in REQUEST_CASES],
)
def test_bad_request_is_flagged(request_spec, streaming, severity, code, path):
    report = SpecChecker().check_request(request_spec, streaming=streaming)
    found = [d for d in report if d.code == code]
    assert found, f"expected {code}, got {[d.code for d in report]}"
    assert found[0].severity == severity
    assert found[0].path == path


def test_clean_specs_are_clean():
    domain = Domain.integers("v", 64)
    for policy in (Policy.line(domain), Policy.distance_threshold(domain, 2.0)):
        report = SpecChecker().check_spec(policy.to_spec())
        assert report.ok and len(report) == 0, report.render_text()


def test_staleness_on_stream_session_is_silent():
    case = dict(REQUEST_CASES[-1][1])
    report = SpecChecker().check_request(case, streaming=True)
    assert not [d for d in report if d.code == "WRK403"]


def test_pol214_reports_unresolvable_family():
    class Registry:
        def families(self):
            return ("histogram",)

        def rule_name(self, family, policy):
            raise LookupError(f"no {family} strategy for this policy")

    domain = Domain.integers("v", 8)
    report = SpecChecker(registry=Registry()).check_objects(policy=Policy.line(domain))
    found = [d for d in report if d.code == "POL214"]
    assert found and found[0].severity == "warning"
    assert found[0].path == "policy"


def test_pol215_reports_unanalyzable_ordered_sensitivity():
    class OpaqueGraph(LineGraph):
        def max_edge_index_gap(self):
            raise NotImplementedError("no analytic gap")

    domain = Domain.integers("v", 8)
    policy = Policy(domain, OpaqueGraph(domain))
    report = SpecChecker().check_objects(policy=policy)
    found = [d for d in report if d.code == "POL215"]
    assert found and found[0].severity == "warning"
    assert found[0].path == "policy.graph"


def test_all_optional_workload_is_an_info():
    request = {
        "policy": _policy(_line()),
        "workload": {
            "kind": "workload",
            "groups": [
                {"family": "range", "los": [0], "his": [5], "optional": True}
            ],
        },
        "plan_budget": {
            "kind": "plan_budget",
            "total": 1.0,
            "degradation": "drop_optional",
        },
    }
    report = SpecChecker().check_request(request)
    found = [d for d in report if d.code == "BUD302"]
    assert found and found[0].severity == "info"
