"""Diagnostic / CheckReport data-model tests."""

from __future__ import annotations

import json

import pytest

from repro.check import CODES, SEVERITIES, CheckReport, Diagnostic


def test_unknown_severity_and_code_are_rejected():
    with pytest.raises(ValueError, match="severity"):
        Diagnostic("fatal", "REQ101", "m", "p")
    with pytest.raises(ValueError, match="code"):
        Diagnostic("error", "XYZ999", "m", "p")


def test_report_sorts_severity_major_and_counts():
    report = CheckReport(
        [
            Diagnostic("info", "BUD302", "i", "a"),
            Diagnostic("error", "REQ101", "e", "b"),
            Diagnostic("warning", "POL210", "w", "c"),
        ]
    )
    assert [d.severity for d in report] == ["error", "warning", "info"]
    assert not report.ok
    assert (report.count("error"), report.count("warning"), report.count("info")) == (
        1,
        1,
        1,
    )
    assert report.errors[0].code == "REQ101"
    assert len(report) == 3


def test_empty_report_is_ok():
    report = CheckReport([])
    assert report.ok
    assert report.summary().startswith("ok")
    assert report.to_dict() == {
        "ok": True,
        "errors": 0,
        "warnings": 0,
        "infos": 0,
        "diagnostics": [],
    }


def test_to_dict_is_json_serializable_and_faithful():
    diag = Diagnostic("warning", "POL201", "too big", "policy.graph")
    report = CheckReport([diag])
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["ok"] is True  # warnings do not fail a check
    assert payload["diagnostics"] == [diag.to_dict()]
    assert "POL201" in report.summary()
    assert diag.render() == "warning POL201 at policy.graph: too big"


def test_merged_reports_combine():
    a = CheckReport([Diagnostic("warning", "POL210", "w", "p")])
    b = CheckReport([Diagnostic("error", "REQ101", "e", "q")])
    merged = a.merged(b)
    assert len(merged) == 2 and not merged.ok


def test_code_table_covers_all_namespaces():
    # every code is namespaced and described; severities are closed
    assert SEVERITIES == ("error", "warning", "info")
    for code, meaning in CODES.items():
        assert code[:3] in {"SPE", "POL", "BUD", "STR", "WRK", "REQ"}, code
        assert code[3:].isdigit() or code[4:].isdigit()
        assert meaning
