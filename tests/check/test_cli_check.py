"""``python -m repro check`` CLI behavior: exit codes, output shapes."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.core.domain import Attribute, Domain
from repro.core.graphs import DistanceThresholdGraph
from repro.core.policy import Policy


@pytest.fixture
def clean_policy(tmp_path):
    path = tmp_path / "policy.json"
    path.write_text(json.dumps(Policy.line(Domain.integers("v", 32)).to_spec()))
    return str(path)


@pytest.fixture
def refused_policy(tmp_path):
    """A constrained policy whose sensitivity analysis hits EdgeScanRefused."""
    domain = Domain([Attribute("a", range(4096)), Attribute("b", range(4096))])
    spec = Policy(domain, DistanceThresholdGraph(domain, 1.5)).to_spec()
    spec["constraints"] = [
        {"query": {"kind": "count", "name": "low", "support": [0, 1]}, "value": 3}
    ]
    path = tmp_path / "refused.json"
    path.write_text(json.dumps(spec))
    return str(path)


@pytest.fixture
def overflowing_stream_budget(tmp_path):
    path = tmp_path / "stream.json"
    path.write_text(
        json.dumps(
            {"kind": "stream_budget", "total": 1.0, "horizon": 64, "floors": {"g": 0.5}}
        )
    )
    return str(path)


def test_clean_specs_exit_zero(clean_policy, capsys):
    assert main(["check", clean_policy]) == 0
    out = capsys.readouterr().out
    assert "ok — 0 error(s)" in out


def test_edge_scan_bound_policy_is_flagged(refused_policy, capsys):
    assert main(["check", refused_policy]) == 1
    out = capsys.readouterr().out
    assert "POL201" in out and "policy.graph" in out


def test_horizon_overflow_is_flagged(overflowing_stream_budget, capsys):
    assert main(["check", overflowing_stream_budget]) == 1
    out = capsys.readouterr().out
    assert "STR311" in out and "plan_budget.floors" in out


def test_multiple_files_report_worst_exit(clean_policy, refused_policy, capsys):
    assert main(["check", clean_policy, refused_policy]) == 1
    out = capsys.readouterr().out
    assert clean_policy in out and refused_policy in out


def test_json_output_is_parseable(refused_policy, overflowing_stream_budget, capsys):
    assert main(["check", "--json", refused_policy, overflowing_stream_budget]) == 1
    reports = json.loads(capsys.readouterr().out)
    assert len(reports) == 2
    by_file = {r["file"]: r for r in reports}
    codes = {d["code"] for d in by_file[refused_policy]["diagnostics"]}
    assert "POL201" in codes
    codes = {d["code"] for d in by_file[overflowing_stream_budget]["diagnostics"]}
    assert "STR311" in codes


def test_unreadable_file_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["check", str(bad)]) == 2
    assert "unreadable" in capsys.readouterr().out


def test_session_flag_drives_staleness_lint(tmp_path, capsys):
    spec = {
        "kind": "workload",
        "domain": Domain.integers("v", 16).to_spec(),
        "groups": [{"family": "range", "los": [0], "his": [5], "max_staleness": 2}],
    }
    path = tmp_path / "workload.json"
    path.write_text(json.dumps(spec))
    assert main(["check", "--session", "stream", str(path)]) == 0
    assert "WRK403" not in capsys.readouterr().out
    assert main(["check", "--session", "plan", str(path)]) == 0  # warning only
    assert "WRK403" in capsys.readouterr().out


def test_examples_fixtures_stay_clean(capsys):
    import glob
    import os

    fixtures = sorted(
        glob.glob(
            os.path.join(os.path.dirname(__file__), "..", "..", "examples", "specs", "*.json")
        )
    )
    assert fixtures, "examples/specs fixtures are missing"
    assert main(["check", *fixtures]) == 0
