"""Full field paths on nested from_spec errors, and enriched refusals.

Constructor ``ValueError`` s that surface through ``from_spec`` must carry
the *full* dotted path to the offending field (``request.plan_budget.
floors.g``, not ``request.plan_budget``), and ``EdgeScanRefused`` carries
machine-readable details sharing the checker's code space.
"""

from __future__ import annotations

import pytest

from repro.core.domain import Attribute, Domain
from repro.core.graphs import (
    CODE_EDGE_SCAN,
    CODE_PAIR_BUDGET,
    EdgeScanRefused,
    DistanceThresholdGraph,
)
from repro.core.specbase import SpecError, mark_field, nested_spec_error
from repro.plan.budget import PlanBudget
from repro.stream.budget import StreamBudget


def _spec_error(fn) -> SpecError:
    with pytest.raises(SpecError) as excinfo:
        fn()
    return excinfo.value


def test_plan_budget_floor_errors_name_the_floor():
    err = _spec_error(
        lambda: PlanBudget.from_spec(
            {"kind": "plan_budget", "total": 1.0, "floors": {"g": -0.5}},
            "request.plan_budget",
        )
    )
    assert err.field == "request.plan_budget.floors.g"


def test_plan_budget_total_errors_name_total():
    err = _spec_error(
        lambda: PlanBudget.from_spec({"kind": "plan_budget", "total": -1.0}, "pb")
    )
    assert err.field == "pb.total"


def test_plan_budget_uniform_floors_conflict_names_floors():
    err = _spec_error(
        lambda: PlanBudget.from_spec(
            {"kind": "plan_budget", "uniform": 0.5, "floors": {"g": 0.1}}, "pb"
        )
    )
    assert err.field == "pb.floors"


def test_stream_budget_horizon_errors_name_horizon():
    err = _spec_error(
        lambda: StreamBudget.from_spec(
            {"kind": "stream_budget", "total": 1.0, "horizon": 0}, "sb"
        )
    )
    assert err.field == "sb.horizon"


def test_stream_budget_window_errors_name_window():
    err = _spec_error(
        lambda: StreamBudget.from_spec(
            {"kind": "stream_budget", "total": 1.0, "horizon": 4, "window": 0}, "sb"
        )
    )
    assert err.field == "sb.window"


def test_mark_field_threads_through_nested_spec_error():
    exc = mark_field(ValueError("nope"), "inner.leaf")
    err = nested_spec_error("outer", exc)
    assert isinstance(err, SpecError)
    assert err.field == "outer.inner.leaf"
    # unmarked exceptions anchor at the wrapping path
    assert nested_spec_error("outer", ValueError("x")).field == "outer"


def test_workload_length_mismatch_names_his():
    from repro.plan.workload import Workload

    domain = Domain.integers("v", 8)
    err = _spec_error(
        lambda: Workload.from_spec(
            {"kind": "workload", "groups": [{"family": "range", "los": [0, 1], "his": [2]}]},
            domain,
            "w",
        )
    )
    assert err.field.endswith(".his")


# -- enriched refusals ----------------------------------------------------------------


def test_edge_scan_refusal_carries_structured_details():
    domain = Domain([Attribute("a", range(4096)), Attribute("b", range(4096))])
    graph = DistanceThresholdGraph(domain, 1.5)
    refusal = graph.scan_refusal()
    assert isinstance(refusal, EdgeScanRefused)
    details = refusal.details()
    assert details["code"] == CODE_EDGE_SCAN
    assert details["family"] == "DistanceThresholdGraph"
    assert details["domain_size"] == domain.size
    assert details["bound"] > details["limit"]
    assert details["fingerprint"] == graph.fingerprint()


def test_scan_refusal_is_none_for_analytic_families():
    domain = Domain.integers("v", 1 << 20)
    from repro.core.graphs import FullDomainGraph, LineGraph

    assert LineGraph(domain).scan_refusal() is None
    assert FullDomainGraph(domain).scan_refusal() is None
    # ordered distance-threshold graphs stay analytic at any size
    assert DistanceThresholdGraph(domain, 2.0).scan_refusal() is None


def test_pair_budget_refusal_shares_the_code_space():
    from repro.core.composition import _check_pair_budget

    domain = Domain.integers("v", 64)
    graph = DistanceThresholdGraph(domain, 2.0)
    with pytest.raises(EdgeScanRefused) as excinfo:
        _check_pair_budget(1e12, graph)
    details = excinfo.value.details()
    assert details["code"] == CODE_PAIR_BUDGET
    assert details["family"] == "DistanceThresholdGraph"
    assert details["fingerprint"] == graph.fingerprint()


def test_service_surfaces_refusal_details(tmp_path):
    """An EdgeScanRefused raised while serving lands in the error payload."""
    from repro.api import BlowfishService

    domain = Domain([Attribute("a", range(4096)), Attribute("b", range(4096))])
    from repro.core.policy import Policy

    spec = Policy(domain, DistanceThresholdGraph(domain, 1.5)).to_spec()
    spec["constraints"] = [
        {"query": {"kind": "count", "name": "low", "support": [0, 1]}, "value": 3}
    ]
    response = BlowfishService().handle(
        {
            "policy": spec,
            "epsilon": 0.5,
            "dataset": {"indices": [0, 1], "domain": domain.to_spec()},
            "queries": [{"kind": "count", "support": [0, 1]}],
        }
    )
    assert response["ok"] is False
    details = response["error"]
    assert details["code"] == CODE_EDGE_SCAN
    assert details["family"] == "DistanceThresholdGraph"
    assert details["bound"] > details["limit"]
    # the serving-time refusal carries the exact code the checker predicts
    from repro.check import check_specs

    predicted = [d for d in check_specs(spec) if d.code == CODE_EDGE_SCAN]
    assert predicted and predicted[0].severity == "error"
