"""Service-level budget-first planning: the ``"plan_budget"`` request field."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Database, Domain, Policy
from repro.api import BlowfishService


@pytest.fixture
def domain():
    return Domain.integers("v", 128)


@pytest.fixture
def service(domain):
    rng = np.random.default_rng(5)
    svc = BlowfishService()
    svc.register_dataset("data", Database.from_indices(domain, rng.integers(0, 128, 3_000)))
    return svc


def _base(domain, epsilon=0.5):
    return {
        "policy": Policy.distance_threshold(domain, 2.0).to_spec(),
        "epsilon": epsilon,
        "dataset": {"name": "data"},
    }


#: a mixed workload spec with an optional linear group (shed first under
#: drop_optional)
def _workload_spec(n=128):
    return {
        "kind": "workload",
        "groups": [
            {"family": "range", "name": "r", "los": [0, 10], "his": [99, 60]},
            {"family": "count", "name": "c", "supports": [list(range(20, 40))]},
            {
                "family": "linear",
                "name": "l",
                "weights": [[1.0 / 3000] * 3000],
                "optional": True,
            },
        ],
    }


class TestBudgetedPlanOp:
    def test_total_budget_is_split_and_spent(self, domain, service):
        resp = service.handle(
            {
                **_base(domain),
                "op": "plan",
                "queries": _workload_spec(),
                "plan_budget": {"total": 1.0},
                "seed": 0,
            }
        )
        assert resp["ok"], resp
        assert resp["plan"]["budget"]["total"] == 1.0
        assert resp["plan"]["total_epsilon"] == pytest.approx(1.0)
        assert resp["meta"]["epsilon_spent"] == pytest.approx(1.0)
        fresh = [s["epsilon"] for s in resp["plan"]["steps"] if s["epsilon"] > 0]
        assert len(fresh) == 2 and all(e > 0 for e in fresh)
        # adaptive: the range release (serving range + count) gets the bulk
        assert max(fresh) > 0.9

    def test_strict_refusal_is_budget_exhausted_with_no_spend(self, domain, service):
        req = {
            **_base(domain),
            "op": "plan",
            "queries": _workload_spec(),
            "plan_budget": {"total": 1.0, "degradation": "strict"},
            "session": "tight",
            "budget": 0.4,
            "seed": 0,
        }
        resp = service.handle(req)
        assert not resp["ok"]
        assert resp["error"]["kind"] == "budget_exhausted"
        # nothing was spent: the same session can still afford a plan that fits
        ok = service.handle(
            {**req, "plan_budget": {"total": 0.4, "degradation": "strict"}}
        )
        assert ok["ok"], ok
        assert ok["meta"]["session_total"] == pytest.approx(0.4)

    def test_drop_optional_returns_null_answers_for_shed_groups(self, domain, service):
        resp = service.handle(
            {
                **_base(domain),
                "op": "plan",
                "queries": _workload_spec(),
                "plan_budget": {"total": 1.0, "degradation": "drop_optional"},
                "session": "degraded",
                "budget": 0.4,
                "seed": 0,
            }
        )
        assert resp["ok"], resp
        assert resp["plan"]["degraded"] == {"dropped": ["l"]}
        assert resp["meta"]["degraded"] == {"dropped": ["l"]}
        # the linear group's answer is JSON null, the rest are numbers
        assert resp["answers"][-1] is None
        assert all(isinstance(a, float) for a in resp["answers"][:-1])
        # the degraded compile charges the remaining-budget bucket's lower
        # edge (floor(0.4 * 64)/64 of the total), not the raw remaining —
        # the quantization that lets other constrained sessions share the
        # cached plan (see PlanBudget.quantize_remaining)
        assert resp["meta"]["session_total"] == pytest.approx(25 / 64)
        json.dumps(resp)  # the whole response stays JSON-clean

    def test_explain_previews_the_budgeted_split_without_spending(self, domain, service):
        resp = service.handle(
            {
                **_base(domain),
                "op": "explain",
                "queries": _workload_spec(),
                "plan_budget": {"total": 2.0, "floors": {"l": 0.5}},
            }
        )
        assert resp["ok"], resp
        spec = resp["plan"]
        assert spec["budget"]["floors"] == {"l": 0.5}
        by_group = {s["group"]: s for s in spec["steps"]}
        assert by_group["l"]["epsilon"] == pytest.approx(0.5)
        assert resp["meta"]["total_epsilon"] == pytest.approx(2.0)
        assert "marginal error per epsilon" in resp["report"]
        assert "cost model:" in resp["report"]

    def test_bad_budget_fields_are_named(self, domain, service):
        resp = service.handle(
            {
                **_base(domain),
                "op": "plan",
                "queries": _workload_spec(),
                "plan_budget": {"total": 1.0, "uniform": 0.5},
                "seed": 0,
            }
        )
        assert not resp["ok"]
        assert resp["error"]["field"] == "request.plan_budget"

    def test_describe_reports_cost_model_and_byte_budgeted_cache(self, domain, service):
        resp = service.handle({**_base(domain), "op": "describe"})
        assert resp["ok"], resp
        model = resp["meta"]["cost_model"]
        assert model["family"] == "synthetic-grid"
        assert "provenance" in model and "constants" in model
        assert model["constants"]["ordered"]["inference"] == 1.0
        cache = resp["meta"]["plan_cache"]
        assert {"bytes", "max_bytes", "oversize"} <= set(cache)
        json.dumps(resp)

    def test_budgeted_plans_shared_across_tenants_with_different_budgets(
        self, domain, service
    ):
        # the hit-rate regression the remaining-budget quantization fixes:
        # two tenants whose session budgets differ (5 vs 7) both cover the
        # requested total, so their remainings are one ("fits",) cache
        # class and the second tenant reuses the first's compiled plan.
        # Keyed on the raw remaining float (the old behaviour), tenant 2
        # could never hit a budgeted entry.
        def request(session, budget):
            return {
                **_base(domain),
                "op": "plan",
                "queries": _workload_spec(),
                "plan_budget": {"total": 1.0},
                "session": session,
                "budget": budget,
                "seed": 0,
            }

        first = service.handle(request("tenant-1", 5.0))
        assert first["ok"], first
        assert first["meta"]["plan_cache"] == "miss"
        second = service.handle(request("tenant-2", 7.0))
        assert second["ok"], second
        assert second["meta"]["plan_cache"] == "hit"
        # the shared plan executes identically under the shared seed
        assert second["answers"] == first["answers"]
        assert second["meta"]["epsilon_spent"] == pytest.approx(
            first["meta"]["epsilon_spent"]
        )

    def test_budgeted_plans_cache_separately_from_unbudgeted(self, domain, service):
        base = {
            **_base(domain),
            "op": "plan",
            "queries": _workload_spec(),
            "seed": 0,
        }
        first = service.handle(dict(base))
        assert first["meta"]["plan_cache"] == "miss"
        budgeted = service.handle(dict(base, plan_budget={"total": 1.0}))
        assert budgeted["meta"]["plan_cache"] == "miss"  # distinct key
        repeat = service.handle(dict(base))
        assert repeat["meta"]["plan_cache"] == "hit"
        # the flat per-release charge vs the adaptive split: same total
        # here, different allocations — the cache must not conflate them
        assert [s["epsilon"] for s in repeat["plan"]["steps"]] != [
            s["epsilon"] for s in budgeted["plan"]["steps"]
        ]
