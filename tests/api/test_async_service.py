"""The asyncio serving tier: coalescing is exact and answers are unchanged.

Pure-asyncio tests (no plugin needed — each test drives its own loop via
``asyncio.run``):

* identical *seeded* in-flight requests execute once and every waiter gets
  the same response; unseeded requests never coalesce (two unseeded
  answers must be two noise draws);
* responses through the tier are bitwise identical to the sync service
  handling the same stream;
* an exception inside the sync service propagates to every coalesced
  waiter; stats add up (``received == coalesced + executed``).
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro import Database, Domain, Policy
from repro.api import AsyncBlowfishService, BlowfishService, serve_many


@pytest.fixture
def domain():
    return Domain.integers("v", 80)


@pytest.fixture
def db(domain):
    rng = np.random.default_rng(11)
    return Database.from_indices(domain, rng.integers(0, domain.size, 800))


def _service(db):
    service = BlowfishService()
    service.register_dataset("data", db)
    return service


class _CountingService:
    """Wraps a service, counting (thread-safely) how often handle() runs."""

    def __init__(self, inner, fail: Exception | None = None):
        self.inner = inner
        self.fail = fail
        self.calls = 0
        self._lock = threading.Lock()

    def handle(self, request):
        with self._lock:
            self.calls += 1
        if self.fail is not None:
            raise self.fail
        return self.inner.handle(request)


def _range_request(domain, *, seed=None, session=None, lo=10, hi=60):
    request = {
        "policy": Policy.line(domain).to_spec(),
        "epsilon": 0.5,
        "dataset": {"name": "data"},
        "queries": [{"kind": "range", "lo": lo, "hi": hi}],
    }
    if seed is not None:
        request["seed"] = seed
    if session is not None:
        request["session"] = session
    return request


class TestCoalescable:
    def test_rules(self, domain):
        can = AsyncBlowfishService._coalescable
        assert can({"op": "describe"})
        assert can({"op": "explain"})
        assert can({"seed": 3})
        assert can({"op": "plan", "seed": 0})
        assert not can({})  # unseeded answer: a fresh noise draw
        assert not can({"seed": True})  # bools are not seeds
        assert not can({"seed": 3.5})
        assert not can("not-a-dict")

    def test_digest_is_order_insensitive(self):
        a = AsyncBlowfishService._digest({"x": 1, "y": [2, 3]})
        b = AsyncBlowfishService._digest({"y": [2, 3], "x": 1})
        assert a == b and a is not None
        assert AsyncBlowfishService._digest({"x": object()}) is None


class TestCoalescing:
    def test_identical_seeded_requests_execute_once(self, domain, db):
        counting = _CountingService(_service(db))
        request = _range_request(domain, seed=5)

        async def run():
            async with AsyncBlowfishService(counting) as tier:
                return await tier.handle_many([dict(request) for _ in range(12)]), tier.stats()

        responses, stats = asyncio.run(run())
        assert all(r["ok"] for r in responses), responses
        assert counting.calls == 1
        assert stats["executed"] == 1 and stats["coalesced"] == 11
        assert stats["received"] == stats["executed"] + stats["coalesced"]
        first = responses[0]
        assert all(r is first for r in responses)  # the shared response object

    def test_unseeded_requests_never_coalesce(self, domain, db):
        counting = _CountingService(_service(db))
        request = _range_request(domain)  # no seed: each ask is a new draw

        async def run():
            async with AsyncBlowfishService(counting) as tier:
                return await tier.handle_many([dict(request) for _ in range(6)]), tier.stats()

        responses, stats = asyncio.run(run())
        assert all(r["ok"] for r in responses)
        assert counting.calls == 6
        assert stats["coalesced"] == 0 and stats["executed"] == 6
        # and they really are independent draws
        assert len({r["answers"][0] for r in responses}) > 1

    def test_distinct_seeded_requests_do_not_share(self, domain, db):
        counting = _CountingService(_service(db))
        requests = [_range_request(domain, seed=i) for i in range(5)]

        async def run():
            async with AsyncBlowfishService(counting) as tier:
                return await tier.handle_many(requests), tier.stats()

        responses, stats = asyncio.run(run())
        assert all(r["ok"] for r in responses)
        assert counting.calls == 5 and stats["coalesced"] == 0


class TestAnswersUnchanged:
    def test_tier_matches_sync_service_bitwise(self, domain, db):
        # sessionless seeded requests are pure functions of the request, so
        # the tier's reordering/batching cannot show through: every answer
        # must equal the sync service's, bit for bit
        requests = [
            _range_request(domain, seed=i, lo=i, hi=40 + i) for i in range(8)
        ]
        expected = [_service(db).handle(dict(r)) for r in requests]
        got, stats = serve_many(_service(db), [dict(r) for r in requests])
        assert all(r["ok"] for r in got), got
        assert [r["answers"] for r in got] == [r["answers"] for r in expected]
        assert stats["received"] == 8
        assert stats["batches"] >= 1

    def test_session_repeats_identical_in_any_order(self, domain, db):
        # within a session the guarantee is per *request*: repeats of one
        # seeded request are answer-identical however the tier schedules
        # them (first execution releases, the rest coalesce or reuse free)
        request = _range_request(domain, seed=9, session="tenant")
        got, _stats = serve_many(_service(db), [dict(request) for _ in range(6)])
        assert all(r["ok"] for r in got), got
        assert len({tuple(r["answers"]) for r in got}) == 1
        expected = _service(db).handle(dict(request))
        assert got[0]["answers"] == expected["answers"]


class TestErrorsAndLifecycle:
    def test_service_exception_propagates_to_every_waiter(self, domain, db):
        boom = RuntimeError("ledger on fire")
        counting = _CountingService(_service(db), fail=boom)
        request = _range_request(domain, seed=1)

        async def run():
            async with AsyncBlowfishService(counting) as tier:
                results = await asyncio.gather(
                    *(tier.handle(dict(request)) for _ in range(4)),
                    return_exceptions=True,
                )
                return results, tier.stats()

        results, stats = asyncio.run(run())
        assert all(r is boom for r in results)  # coalesced waiters share the failure
        assert counting.calls == 1

    def test_sequential_repeats_execute_fresh(self, domain, db):
        # coalescing is strictly *in-flight*: once a request resolves, its
        # digest leaves the map and a later repeat executes again (at-rest
        # reuse is the session release cache's job, not the tier's)
        service = _service(db)
        counting = _CountingService(service)
        request = _range_request(domain, seed=2)

        async def run():
            async with AsyncBlowfishService(counting) as tier:
                first = await tier.handle(dict(request))
                second = await tier.handle(dict(request))
                return first, second, tier.stats()

        first, second, stats = asyncio.run(run())
        # sequential (not concurrent) repeats: nothing in flight, both run
        assert counting.calls == 2
        assert stats["coalesced"] == 0
        assert first["answers"] == second["answers"]  # seeded: still identical

    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncBlowfishService(max_workers=0)
        with pytest.raises(ValueError):
            AsyncBlowfishService(max_batch=0)
        with pytest.raises(ValueError):
            AsyncBlowfishService(batch_window=-0.1)
