"""Ledger stores: one budget truth across threads, processes, and services.

The :class:`LedgerStore` contract (atomic compare-and-spend, exact refusal
at the cap, append-only entries) asserted for both implementations, then
the deployment-level guarantees the seam buys:

* a 4-process SQLite stress: racing workers over one file never jointly
  overspend — admissions stop exactly at the cap, every other attempt is a
  clean :class:`BudgetExceededError`, and no admitted spend is lost;
* two :class:`BlowfishService` instances sharing one SQLite file behave as
  one logical service: spends made through either are visible to (and
  enforced against) the other, surviving session-cache eviction.
"""

from __future__ import annotations

import multiprocessing
import threading

import numpy as np
import pytest

from repro import Database, Domain, Policy
from repro.api import BlowfishService, InMemoryLedgerStore, SQLiteLedgerStore
from repro.core.composition import BudgetExceededError, PrivacyAccountant

N_THREADS = 16


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryLedgerStore()
    return SQLiteLedgerStore(str(tmp_path / "ledger.sqlite"))


class TestStoreContract:
    def test_charge_totals_and_entries(self, store):
        assert store.total("s") == 0.0
        assert store.charge("s", 0.5, label="range") == 0.5
        assert store.charge("s", 0.25, label="count", ids=frozenset({1, 2})) == 0.75
        assert store.total("s") == pytest.approx(0.75)
        labels = [e.label for e in store.entries("s")]
        assert labels == ["range", "count"]
        assert store.entries("s")[1].ids == frozenset({1, 2})
        assert store.keys() == ["s"]

    def test_keys_are_independent(self, store):
        store.charge("a", 0.5)
        store.charge("b", 0.25)
        assert store.total("a") == 0.5
        assert store.total("b") == 0.25
        assert sorted(store.keys()) == ["a", "b"]

    def test_refusal_at_cap_records_nothing(self, store):
        store.charge("s", 0.75, budget=1.0)
        with pytest.raises(BudgetExceededError):
            store.charge("s", 0.5, budget=1.0)
        assert store.total("s") == pytest.approx(0.75)
        assert len(store.entries("s")) == 1
        # the exact fit still goes through (float slack, not strictness)
        store.charge("s", 0.25, budget=1.0)
        assert store.total("s") == pytest.approx(1.0)

    def test_negative_epsilon_rejected(self, store):
        with pytest.raises(ValueError):
            store.charge("s", -0.1)

    def test_clear(self, store):
        store.charge("a", 0.5)
        store.charge("b", 0.5)
        store.clear("a")
        assert store.total("a") == 0.0 and store.total("b") == 0.5
        store.clear()
        assert store.keys() == []

    def test_threaded_chargers_never_lose_or_overspend(self, store):
        budget, epsilon = 2.0, 0.25  # exactly 8 admissions fit
        outcomes: list = []
        barrier = threading.Barrier(N_THREADS)

        def worker():
            barrier.wait()
            try:
                store.charge("hot", epsilon, budget=budget)
                outcomes.append("ok")
            except BudgetExceededError:
                outcomes.append("refused")

        threads = [threading.Thread(target=worker) for _ in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes.count("ok") == 8
        assert outcomes.count("refused") == N_THREADS - 8
        assert store.total("hot") == pytest.approx(budget)
        assert len(store.entries("hot")) == 8


class TestAccountantDelegation:
    def test_accountant_spends_through_the_store(self, store):
        domain = Domain.integers("v", 10)
        policy = Policy.line(domain)
        acct = PrivacyAccountant(policy, budget=1.0, store=store, key="tenant-1")
        acct.spend(0.5, label="release")
        assert store.total("tenant-1") == pytest.approx(0.5)
        assert acct.sequential_total() == pytest.approx(0.5)
        with pytest.raises(BudgetExceededError):
            acct.spend(0.75)
        assert store.total("tenant-1") == pytest.approx(0.5)

    def test_two_accountants_one_key_share_a_ledger(self, store):
        # the eviction/restart story: a rebuilt accountant finds old spends
        domain = Domain.integers("v", 10)
        policy = Policy.line(domain)
        first = PrivacyAccountant(policy, budget=1.0, store=store, key="k")
        first.spend(0.75)
        rebuilt = PrivacyAccountant(policy, budget=1.0, store=store, key="k")
        assert rebuilt.sequential_total() == pytest.approx(0.75)
        with pytest.raises(BudgetExceededError):
            rebuilt.spend(0.5)


# -- multi-process stress -------------------------------------------------------------

ATTEMPTS_PER_PROC = 20
N_PROCS = 4
STRESS_EPSILON = 0.25
STRESS_BUDGET = 5.0  # exactly 20 admissions across all processes


def _stress_worker(path, barrier, queue):
    # module-level so the "spawn" start method can import it; spawn (not
    # fork) is the point — each worker opens the file cold, like a real
    # service process
    from repro.api import SQLiteLedgerStore
    from repro.core.composition import BudgetExceededError

    store = SQLiteLedgerStore(path)
    barrier.wait()
    admitted = refused = 0
    for _ in range(ATTEMPTS_PER_PROC):
        try:
            store.charge("shared", STRESS_EPSILON, budget=STRESS_BUDGET)
            admitted += 1
        except BudgetExceededError:
            refused += 1
    queue.put((admitted, refused))


class TestMultiProcessStress:
    def test_four_processes_admit_exactly_the_cap(self, tmp_path):
        path = str(tmp_path / "stress.sqlite")
        SQLiteLedgerStore(path)  # create the schema up front
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(N_PROCS)
        queue = ctx.Queue()
        procs = [
            ctx.Process(target=_stress_worker, args=(path, barrier, queue))
            for _ in range(N_PROCS)
        ]
        for p in procs:
            p.start()
        results = [queue.get(timeout=120) for _ in range(N_PROCS)]
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0

        admitted = sum(a for a, _ in results)
        refused = sum(r for _, r in results)
        assert admitted == int(STRESS_BUDGET / STRESS_EPSILON)  # exactly at the cap
        assert refused == N_PROCS * ATTEMPTS_PER_PROC - admitted
        # no admitted spend was lost: the file agrees with the admissions
        store = SQLiteLedgerStore(path)
        assert store.total("shared") == pytest.approx(STRESS_BUDGET)
        assert len(store.entries("shared")) == admitted


# -- two services, one ledger file ----------------------------------------------------


class TestSharedLedgerServices:
    def _service(self, db, path):
        service = BlowfishService(ledger_store=SQLiteLedgerStore(path))
        service.register_dataset("data", db)
        return service

    def test_budget_enforced_across_service_instances(self, tmp_path):
        domain = Domain.integers("v", 100)
        rng = np.random.default_rng(3)
        db = Database.from_indices(domain, rng.integers(0, 100, 1_000))
        path = str(tmp_path / "shared.sqlite")

        def request(weights_row):
            weights = [0.0] * db.n
            weights[weights_row] = 1.0
            return {
                "policy": Policy.line(domain).to_spec(),
                "epsilon": 0.5,
                "dataset": {"name": "data"},
                "queries": [{"kind": "linear", "weights": weights}],
                "session": "travelling-analyst",
                "budget": 1.0,
                "seed": 7,
            }

        first = self._service(db, path)
        r1 = first.handle(request(0))
        assert r1["ok"], r1
        assert r1["meta"]["session_total"] == pytest.approx(0.5)

        # a *different* service process-equivalent: fresh caches, same file
        second = self._service(db, path)
        r2 = second.handle(request(1))
        assert r2["ok"], r2
        # the second service saw the first's spend in its session total
        assert r2["meta"]["session_total"] == pytest.approx(1.0)

        # and enforces the cap the first service's spends already half-used
        r3 = second.handle(request(2))
        assert not r3["ok"]
        assert r3["error"]["kind"] == "budget_exhausted"
        # refusal spent nothing: the first service's repeat of its own query
        # is still answered free from its release cache at the same total
        r4 = first.handle(request(0))
        assert r4["ok"], r4
        assert r4["meta"]["epsilon_spent"] == 0.0
        assert r4["meta"]["session_total"] == pytest.approx(1.0)
