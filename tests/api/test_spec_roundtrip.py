"""Property tests: ``from_spec(to_spec(x))`` preserves identity.

Fingerprints are the library's notion of structural identity — the
sensitivity cache, the engine pool and the service all key on them — so a
spec round trip that changed a fingerprint would silently split (or worse,
merge) cache entries.  Hypothesis drives every graph family, constrained
and unconstrained policies, and each serializable query type through
``to_spec -> json.dumps -> json.loads -> from_spec``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Attribute, Domain, Partition, Policy
from repro.api import from_spec, to_spec
from repro.core.graphs import (
    AttributeGraph,
    DistanceThresholdGraph,
    EdgelessGraph,
    ExplicitGraph,
    FullDomainGraph,
    LineGraph,
)
from repro.core.queries import (
    Constraint,
    ConstraintSet,
    CountQuery,
    CumulativeHistogramQuery,
    HistogramQuery,
    KMeansSumQuery,
    LinearQuery,
    Query,
    RangeQuery,
)
from repro.core.specbase import SpecError
from repro.engine import policy_fingerprint, query_cache_key

# -- strategies -------------------------------------------------------------------

_names = st.sampled_from(["v", "age", "lat_km", "x0"])

_int_values = st.integers(min_value=-3, max_value=3).flatmap(
    lambda lo: st.integers(min_value=1, max_value=6).map(lambda n: list(range(lo, lo + n)))
)
_float_values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False).map(float),
    min_size=1,
    max_size=6,
    unique=True,
)
_str_values = st.lists(
    st.text(alphabet="abcxyz", min_size=1, max_size=4), min_size=1, max_size=6, unique=True
)


@st.composite
def attributes(draw, name=None, numeric=False):
    values = draw(
        st.one_of(_int_values, _float_values)
        if numeric
        else st.one_of(_int_values, _float_values, _str_values)
    )
    return Attribute(name or draw(_names), values)


@st.composite
def domains(draw):
    n = draw(st.integers(min_value=1, max_value=2))
    return Domain([draw(attributes(name=f"a{i}")) for i in range(n)])


@st.composite
def ordered_numeric_domains(draw):
    return Domain([draw(attributes(name="v", numeric=True))])


@st.composite
def partitions(draw, domain):
    raw = draw(
        st.lists(
            st.integers(min_value=0, max_value=3),
            min_size=domain.size,
            max_size=domain.size,
        )
    )
    # compress to contiguous block ids starting at 0
    _, labels = np.unique(np.asarray(raw, dtype=np.int64), return_inverse=True)
    return Partition(domain, labels.astype(np.int64))


@st.composite
def graphs(draw):
    family = draw(
        st.sampled_from(["full", "attribute", "edgeless", "line", "threshold", "partition", "explicit"])
    )
    if family in ("line", "threshold"):
        domain = draw(ordered_numeric_domains())
        if family == "line":
            return LineGraph(domain)
        return DistanceThresholdGraph(
            domain, draw(st.floats(min_value=0.5, max_value=10.0, allow_nan=False))
        )
    domain = draw(domains())
    if family == "full":
        return FullDomainGraph(domain)
    if family == "attribute":
        return AttributeGraph(domain)
    if family == "edgeless":
        return EdgelessGraph(domain)
    if family == "partition":
        from repro.core.graphs import PartitionGraph

        return PartitionGraph(draw(partitions(domain)))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, domain.size - 1), st.integers(0, domain.size - 1)
            ).filter(lambda e: e[0] != e[1]),
            max_size=8,
        )
    )
    return ExplicitGraph(domain, edges)


@st.composite
def constraint_sets(draw, domain):
    n = draw(st.integers(min_value=1, max_value=3))
    constraints = []
    for _ in range(n):
        mask = np.asarray(
            draw(
                st.lists(
                    st.booleans(), min_size=domain.size, max_size=domain.size
                )
            ),
            dtype=bool,
        )
        value = draw(st.integers(min_value=0, max_value=50))
        constraints.append(Constraint(CountQuery.from_mask(domain, mask), value))
    return ConstraintSet(constraints)


@st.composite
def policies(draw):
    graph = draw(graphs())
    constraints = draw(st.one_of(st.none(), constraint_sets(graph.domain)))
    return Policy(graph.domain, graph, constraints)


@st.composite
def queries(draw):
    kind = draw(st.sampled_from(["range", "count", "linear", "histogram", "histogram_p", "cumulative"]))
    if kind in ("range", "linear", "cumulative"):
        domain = draw(ordered_numeric_domains())
        if kind == "range":
            lo = draw(st.integers(0, domain.size - 1))
            hi = draw(st.integers(lo, domain.size - 1))
            return RangeQuery(domain, lo, hi)
        if kind == "cumulative":
            return CumulativeHistogramQuery(domain)
        weights = draw(
            st.lists(
                st.floats(min_value=-10, max_value=10, allow_nan=False),
                min_size=1,
                max_size=5,
            )
        )
        return LinearQuery(domain, weights)
    domain = draw(domains())
    if kind == "count":
        mask = np.asarray(
            draw(st.lists(st.booleans(), min_size=domain.size, max_size=domain.size)),
            dtype=bool,
        )
        return CountQuery.from_mask(domain, mask, name=draw(_names))
    if kind == "histogram":
        return HistogramQuery(domain)
    return HistogramQuery(domain, draw(partitions(domain)))


def _json_round_trip(spec: dict) -> dict:
    encoded = json.dumps(spec)
    return json.loads(encoded)


# -- properties -------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(domains())
def test_domain_round_trip_preserves_fingerprint(domain):
    rebuilt = from_spec(_json_round_trip(to_spec(domain)))
    assert isinstance(rebuilt, Domain)
    assert rebuilt.fingerprint() == domain.fingerprint()
    assert rebuilt == domain


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_every_graph_family_round_trips(graph):
    rebuilt = from_spec(_json_round_trip(to_spec(graph)))
    assert type(rebuilt) is type(graph)
    assert rebuilt.fingerprint() == graph.fingerprint()


@settings(max_examples=60, deadline=None)
@given(policies())
def test_constrained_and_unconstrained_policies_round_trip(policy):
    rebuilt = from_spec(_json_round_trip(to_spec(policy)))
    assert isinstance(rebuilt, Policy)
    assert policy_fingerprint(rebuilt) == policy_fingerprint(policy)
    assert rebuilt.unconstrained == policy.unconstrained


@settings(max_examples=80, deadline=None)
@given(queries())
def test_each_query_type_round_trips(query):
    spec = _json_round_trip(to_spec(query))
    rebuilt = from_spec(spec, domain=query.domain)
    assert type(rebuilt) is type(query)
    assert query_cache_key(rebuilt) == query_cache_key(query)
    assert rebuilt.output_dim == query.output_dim
    if isinstance(query, CountQuery):
        assert np.array_equal(rebuilt.mask, query.mask)
        assert rebuilt.name == query.name
    if isinstance(query, LinearQuery):
        assert np.array_equal(rebuilt.weights, query.weights)


@settings(max_examples=40, deadline=None)
@given(domains())
def test_partition_round_trip_preserves_fingerprint(domain):
    part = Partition.singletons(domain)
    rebuilt = from_spec(_json_round_trip(to_spec(part)))
    assert rebuilt.fingerprint() == part.fingerprint()


# -- deterministic error / edge cases ----------------------------------------------


def test_kmeans_queries_have_no_spec(small_ordered_domain):
    q = KMeansSumQuery(small_ordered_domain, lambda pts: np.zeros(len(pts), int), 2)
    with pytest.raises(SpecError, match="no spec representation"):
        to_spec(q)


def test_errors_name_the_offending_field(small_ordered_domain):
    cases = [
        ({"kind": "domain", "version": 1}, None, "attributes"),
        ({"kind": "domain", "version": 99, "attributes": []}, None, "version"),
        ({"kind": "graph/distance_threshold", "version": 1,
          "domain": small_ordered_domain.to_spec()}, None, "theta"),
        ({"kind": "range", "lo": 0}, small_ordered_domain, "hi"),
        ({"kind": "count", "support": [0, 99]}, small_ordered_domain, "support"),
        ({"kind": "nonsense"}, small_ordered_domain, "kind"),
    ]
    for spec, domain, field in cases:
        with pytest.raises(SpecError) as exc:
            from_spec(spec, domain=domain)
        assert field in str(exc.value), (spec, exc.value)


def test_query_specs_require_domain_context(small_ordered_domain):
    spec = RangeQuery(small_ordered_domain, 1, 5).to_spec()
    with pytest.raises(SpecError, match="domain context"):
        from_spec(spec)


def test_compact_int_range_encoding(small_ordered_domain):
    spec = small_ordered_domain.to_spec()
    assert spec["attributes"][0]["values"] == {"int_range": [0, 10]}
    big = Domain.integers("v", 100_000)
    assert len(json.dumps(big.to_spec())) < 200


def test_explicit_graph_edges_survive(small_ordered_domain):
    g = ExplicitGraph(small_ordered_domain, [(0, 3), (5, 9)])
    g2 = from_spec(_json_round_trip(to_spec(g)))
    assert sorted(g2.edges()) == sorted(g.edges())
