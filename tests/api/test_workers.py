"""The sharded multi-process runner: same answers at any worker count.

The deployment claim behind ``serve-demo --workers``: session-sharded
workers over one SQLite ledger serve a deterministic stream with

* responses bitwise identical across worker counts (1 vs 2 vs 4),
* every session's spends landing exactly once in the shared ledger
  (repeats free, nothing lost, nothing double-charged),
* worker failures surfacing as errors in the parent, not hangs.

Factories are module-level so they pickle under any start method.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro import Database, Domain, Policy
from repro.api import BlowfishService, ShardedServiceRunner, SQLiteLedgerStore
from repro.api.workers import _stable_shard

REPEATS = 4
EPSILON = 0.5


def _domain():
    return Domain.integers("v", 60)


def _worker_service(ledger_path):
    domain = _domain()
    rng = np.random.default_rng(2)
    db = Database.from_indices(domain, rng.integers(0, domain.size, 500))
    service = BlowfishService(ledger_store=SQLiteLedgerStore(ledger_path))
    service.register_dataset("data", db)
    return service


def _stream_session(i):
    # one session per distinct query: its requests are identical, so the
    # stream is order-independent and worker-count-independent
    return f"client-{i // REPEATS}"


def _stream_request(i):
    domain = _domain()
    query = i // REPEATS
    return {
        "policy": Policy.line(domain).to_spec(),
        "epsilon": EPSILON,
        "dataset": {"name": "data"},
        "queries": [{"kind": "range", "lo": query, "hi": 40 + query}],
        "session": _stream_session(i),
        "budget": 5.0,
        "seed": 100 + query,
    }


def _failing_request(i):
    raise RuntimeError("request factory exploded")


def _run(tmp_path, workers, n):
    tmp_path.mkdir(parents=True, exist_ok=True)
    ledger_path = str(tmp_path / f"ledger-{workers}.sqlite")
    runner = ShardedServiceRunner(
        functools.partial(_worker_service, ledger_path), workers=workers
    )
    result = runner.run(n, _stream_request, shard_key=_stream_session)
    return result, SQLiteLedgerStore(ledger_path)


class TestShardAffinity:
    def test_stable_shard_is_deterministic(self):
        assert _stable_shard("client-3", 4) == _stable_shard("client-3", 4)
        assert 0 <= _stable_shard("anything", 4) < 4

    def test_equal_session_keys_share_a_worker(self):
        runner = ShardedServiceRunner(lambda: None, workers=4)
        shards = {runner.shard_of(_stream_session(i)) for i in range(REPEATS)}
        assert len(shards) == 1  # all repeats of query 0


class TestShardedRuns:
    N = 4 * REPEATS  # 4 distinct queries, each asked 4 times

    @pytest.mark.parametrize("workers", [2, 4])
    def test_answers_bitwise_identical_to_single_worker(self, tmp_path, workers):
        single, single_ledger = _run(tmp_path / "one", 1, self.N)
        multi, multi_ledger = _run(tmp_path / "many", workers, self.N)

        assert all(r["ok"] for r in single.responses), single.responses
        assert all(r["ok"] for r in multi.responses), multi.responses
        assert [r["answers"] for r in multi.responses] == [
            r["answers"] for r in single.responses
        ]
        # budget truth agrees too: every client paid for exactly one release
        assert sorted(single_ledger.keys()) == sorted(multi_ledger.keys())
        for key in multi_ledger.keys():
            assert multi_ledger.total(key) == pytest.approx(EPSILON)
            assert single_ledger.total(key) == pytest.approx(EPSILON)

    def test_repeats_are_free_and_nothing_is_lost(self, tmp_path):
        result, ledger = _run(tmp_path, 2, self.N)
        assert all(r["ok"] for r in result.responses)
        # responses either executed (spending EPSILON), reused a release
        # free, or are a coalesced share of an executing response — so the
        # metadata only ever shows 0 or EPSILON ...
        spends = {r["meta"]["epsilon_spent"] for r in result.responses}
        assert spends <= {0.0, EPSILON}
        # ... while the ledger holds the actual truth: exactly one release
        # charged per client, however many times its query was asked
        assert len(ledger.keys()) == 4
        for key in ledger.keys():
            assert ledger.total(key) == pytest.approx(EPSILON)
            assert len(ledger.entries(key)) == 1

    def test_result_metrics_are_populated(self, tmp_path):
        result, _ledger = _run(tmp_path, 2, self.N)
        assert result.n_workers == 2
        assert result.wall_elapsed > 0
        assert result.requests_per_second > 0
        assert len(result.worker_elapsed) == 2
        assert len(result.latencies) == self.N
        assert result.latency_quantile(0.5) <= result.latency_quantile(0.99)
        stats = result.tier_stats
        assert stats["received"] == self.N
        assert stats["executed"] + stats["coalesced"] == self.N
        assert stats["coalesced"] > 0  # repeats in flight shared executions

    def test_worker_failure_is_surfaced_not_hung(self, tmp_path):
        runner = ShardedServiceRunner(
            functools.partial(_worker_service, str(tmp_path / "l.sqlite")), workers=2
        )
        with pytest.raises(RuntimeError, match="request factory exploded"):
            runner.run(4, _failing_request)

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ShardedServiceRunner(lambda: None, workers=0)
