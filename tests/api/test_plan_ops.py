"""Service-level planning: the ``"plan"``/``"explain"`` ops and the pool
statistics exposed by ``"describe"``."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, Domain, Policy
from repro.api import BlowfishService, EnginePool, spec_digest


@pytest.fixture
def domain():
    return Domain.integers("v", 128)


@pytest.fixture
def service(domain):
    rng = np.random.default_rng(5)
    svc = BlowfishService()
    svc.register_dataset("data", Database.from_indices(domain, rng.integers(0, 128, 3_000)))
    return svc


def _base(domain, theta=2.0, epsilon=0.5):
    return {
        "policy": Policy.distance_threshold(domain, theta).to_spec(),
        "epsilon": epsilon,
    }


MIXED_QUERIES = [
    {"kind": "range", "lo": 5, "hi": 60},
    {"kind": "range", "lo": 0, "hi": 127},
    {"kind": "count", "support": list(range(30, 50))},
]


class TestPlanOp:
    def test_plan_answers_and_reports_steps(self, domain, service):
        req = {
            **_base(domain),
            "op": "plan",
            "dataset": {"name": "data"},
            "queries": MIXED_QUERIES,
            "session": "c", "seed": 0,
        }
        resp = service.handle(req)
        assert resp["ok"], resp
        assert len(resp["answers"]) == 3
        steps = resp["plan"]["steps"]
        assert [s["family"] for s in steps] == ["range", "count"]
        for step in steps:
            assert {"strategy", "predicted_rmse", "epsilon", "release"} <= set(step)
        # theta=2: cost-driven pick is the ordered mechanism, counts shared
        assert steps[0]["strategy"] == "ordered"
        assert steps[1]["release"] == steps[0]["release"]
        assert resp["meta"]["epsilon_spent"] == pytest.approx(0.5)
        # repeat: served from the session's cached release for free
        again = service.handle(req)
        assert again["meta"]["epsilon_spent"] == 0.0
        assert again["answers"] == resp["answers"]

    def test_fixed_mode_is_bitwise_identical_to_answer(self, domain, service):
        common = {
            **_base(domain),
            "dataset": {"name": "data"},
            "queries": MIXED_QUERIES,
            "seed": 7,
        }
        answered = service.handle(common)
        planned = service.handle({**common, "op": "plan", "mode": "fixed"})
        assert answered["ok"] and planned["ok"]
        assert planned["answers"] == answered["answers"]
        assert planned["plan"]["mode"] == "fixed"

    def test_workload_spec_shape_is_accepted(self, domain, service):
        workload = {
            "kind": "workload",
            "groups": [
                {"name": "r", "family": "range", "los": [0, 4], "his": [10, 90]},
                {"name": "c", "family": "count", "supports": [list(range(8, 16))]},
            ],
        }
        resp = service.handle(
            {**_base(domain), "op": "plan", "dataset": {"name": "data"},
             "queries": workload, "seed": 0}
        )
        assert resp["ok"], resp
        assert len(resp["answers"]) == 3

    def test_bad_mode_is_named(self, domain, service):
        resp = service.handle(
            {**_base(domain), "op": "plan", "dataset": {"name": "data"},
             "queries": MIXED_QUERIES, "mode": "yolo"}
        )
        assert not resp["ok"]
        assert resp["error"]["field"] == "request.mode"


class TestExplainOp:
    def test_explain_spends_nothing_and_needs_no_dataset(self, domain):
        service = BlowfishService()  # nothing registered
        resp = service.handle(
            {**_base(domain), "op": "explain", "queries": MIXED_QUERIES}
        )
        assert resp["ok"], resp
        report = resp["report"]
        for needle in ("predicted RMSE", "epsilon", "candidates:", "ordered"):
            assert needle in report
        spec = resp["plan"]
        assert spec["kind"] == "plan"
        # the spec round-trips through the library loader
        from repro.plan import Plan

        plan = Plan.from_spec(spec, domain)
        assert plan.fingerprint() == Plan.from_spec(plan.to_spec(), domain).fingerprint()

    def test_explain_never_materializes_a_session(self, domain, service):
        # a preview must not create an unbudgeted session that would later
        # swallow the budget of the client's real first request
        common = {
            **_base(domain),
            "dataset": {"name": "data"},
            "queries": MIXED_QUERIES,
            "session": "fresh-client",
        }
        assert service.handle({**common, "op": "explain"})["ok"]
        resp = service.handle({**common, "op": "plan", "budget": 0.5, "seed": 0})
        assert resp["ok"]
        # the budget from the first *answering* request is enforced
        refused = service.handle(
            {**common, "op": "plan", "budget": 0.5, "seed": 0,
             "queries": [{"kind": "linear", "weights": [1.0] * 3000}]}
        )
        assert not refused["ok"] and "budget" in refused["error"]["message"]

    def test_explain_previews_the_warmed_session(self, domain, service):
        # after a plan request warms the session, an explain on the same
        # request must report the reuse (zero charge), not fresh spends
        common = {
            **_base(domain),
            "dataset": {"name": "data"},
            "queries": MIXED_QUERIES,
            "session": "warm",
            "seed": 0,
        }
        service.handle({**common, "op": "plan"})
        preview = service.handle({**common, "op": "explain"})
        assert preview["ok"]
        assert preview["meta"]["total_epsilon"] == 0.0
        # without the session context the same workload predicts a charge
        cold = service.handle({**_base(domain), "op": "explain", "queries": MIXED_QUERIES})
        assert cold["meta"]["total_epsilon"] > 0.0

    def test_explain_reports_epsilon_split_per_group(self, domain):
        resp = BlowfishService().handle(
            {**_base(domain), "op": "explain", "queries": MIXED_QUERIES}
        )
        eps = [s["epsilon"] for s in resp["plan"]["steps"]]
        assert eps == [0.5, 0.0]  # counts ride the shared range release
        assert resp["meta"]["total_epsilon"] == pytest.approx(0.5)


class TestPlanCacheServing:
    def test_repeated_tenant_workloads_share_one_compiled_plan(self, domain, service):
        req = {
            **_base(domain),
            "op": "plan",
            "dataset": {"name": "data"},
            "queries": MIXED_QUERIES,
            "seed": 3,
        }
        # two ephemeral tenants, same workload: the second skips candidate
        # scoring and still answers bitwise-identically (same seed)
        first = service.handle(dict(req))
        second = service.handle(dict(req))
        assert first["ok"] and second["ok"]
        assert first["meta"]["plan_cache"] == "miss"
        assert second["meta"]["plan_cache"] == "hit"
        assert second["answers"] == first["answers"]
        assert second["plan"] == first["plan"]
        stats = service.pool.plan_cache.stats()
        assert stats["size"] == 1 and stats["hits"] == 1

    def test_explain_preview_warms_the_plan_cache_for_plan(self, domain, service):
        req = {
            **_base(domain),
            "dataset": {"name": "data"},
            "queries": MIXED_QUERIES,
            "session": "warmed", "seed": 0,
        }
        preview = service.handle({**req, "op": "explain"})
        assert preview["ok"] and preview["meta"]["plan_cache"] == "miss"
        executed = service.handle({**req, "op": "plan"})
        assert executed["ok"] and executed["meta"]["plan_cache"] == "hit"
        # explain returns the full plan spec; its digest is the fingerprint
        assert executed["plan"]["fingerprint"] == spec_digest(preview["plan"])

    def test_warmed_session_state_changes_the_cache_key(self, domain, service):
        req = {
            **_base(domain),
            "op": "plan",
            "dataset": {"name": "data"},
            "queries": MIXED_QUERIES,
            "session": "s1", "seed": 0,
        }
        first = service.handle(dict(req))
        assert first["meta"]["plan_cache"] == "miss"
        # the session now holds the release: a plan that charges 0 is a
        # different plan, so it must not be served from the cold entry
        second = service.handle(dict(req))
        assert second["meta"]["plan_cache"] == "miss"
        assert second["meta"]["epsilon_spent"] == 0.0
        # ... but a second *tenant* in the cold state hits the cold entry
        third = service.handle({**req, "session": "s2"})
        assert third["meta"]["plan_cache"] == "hit"

    def test_registering_a_rule_keys_out_stale_plans(self, domain, service):
        from repro.mechanisms.ordered import OrderedMechanism

        engine = service.pool.get(Policy.distance_threshold(domain, 2.0), 0.5)
        workload = engine.workload([])  # empty is enough to exercise the key
        assert engine.plan_with_meta(workload)[1] == "miss"
        assert engine.plan_with_meta(workload)[1] == "hit"
        # a new rule changes what candidate scoring would choose: the old
        # compiled plans must not survive under the mutated registry
        engine.registry.register(
            "range",
            None,
            lambda policy, epsilon, **kw: OrderedMechanism(policy, epsilon),
            name="custom-ordered",
        )
        assert engine.plan_with_meta(workload)[1] == "miss"


class TestDescribeStats:
    def test_describe_exposes_pool_and_sensitivity_cache(self, domain, service):
        resp = service.handle({**_base(domain), "op": "describe"})
        assert resp["ok"]
        pool = resp["meta"]["engine_pool"]
        assert {"size", "maxsize", "hits", "misses", "evictions"} <= set(pool)
        assert {"size", "hits", "misses"} <= set(resp["meta"]["sensitivity_cache"])

    def test_describe_exposes_plan_cache_traffic(self, domain, service):
        req = {
            **_base(domain),
            "op": "plan",
            "dataset": {"name": "data"},
            "queries": MIXED_QUERIES,
            "seed": 3,
        }
        service.handle(dict(req))
        service.handle(dict(req))
        resp = service.handle({**_base(domain), "op": "describe"})
        stats = resp["meta"]["plan_cache"]
        assert {"size", "maxsize", "hits", "misses", "evictions"} <= set(stats)
        assert stats["size"] == 1
        assert stats["hits"] >= 1 and stats["misses"] >= 1


class TestPoolLRU:
    def test_stats_counts_hits_misses_evictions(self, domain):
        pool = EnginePool(maxsize=2)
        p = Policy.line(domain)
        pool.get(p, 0.5)
        pool.get(p, 0.5)
        pool.get(p, 0.7)
        pool.get(p, 0.9)
        stats = pool.stats()
        assert stats == {
            "size": 2, "maxsize": 2, "hits": 1, "misses": 3, "evictions": 1,
        }

    def test_eviction_order_matches_lru(self, domain):
        pool = EnginePool(maxsize=2)
        policies = {t: Policy.distance_threshold(domain, t) for t in (2, 3, 4)}
        pool.get(policies[2], 0.5)
        pool.get(policies[3], 0.5)
        pool.get(policies[2], 0.5)  # touch 2: now 3 is least recently used
        pool.get(policies[4], 0.5)  # evicts 3, not 2
        assert pool.key(policies[2], 0.5) in pool
        assert pool.key(policies[4], 0.5) in pool
        assert pool.key(policies[3], 0.5) not in pool
        assert pool.stats()["evictions"] == 1
