"""Multi-threaded serving: one ledger per key, no lost spends, shared plans.

The guarantees the README's "Thread safety" section advertises, asserted
under real thread pools with barriers maximizing contention:

* racing ``handle()`` calls for the same brand-new session key construct
  exactly one :class:`Session` ledger, and the epsilon reported across the
  responses sums to exactly what that ledger recorded;
* concurrent spends on one session never lose increments;
* parallel ``plan`` ops return answers bitwise identical to serial
  execution, with the compiled plan shared through the cross-tenant
  :class:`PlanCache`;
* :class:`EnginePool` hands every racing caller the same engine object and
  reports the hit/miss of *this* call, not a neighbour's.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import Database, Domain, Policy
from repro.api import BlowfishService, EnginePool, PlanCache

N_THREADS = 16


@pytest.fixture
def domain():
    return Domain.integers("v", 150)


@pytest.fixture
def db(domain):
    rng = np.random.default_rng(7)
    return Database.from_indices(domain, rng.integers(0, domain.size, 1_500))


def _service(db):
    service = BlowfishService()
    service.register_dataset("data", db)
    return service


def _hammer(n_threads, worker):
    """Run ``worker(i)`` on n_threads threads released through one barrier."""
    barrier = threading.Barrier(n_threads)
    results: list = [None] * n_threads
    errors: list = []

    def run(i):
        try:
            barrier.wait()
            results[i] = worker(i)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return results


class TestSessionRaces:
    def test_same_new_session_key_creates_exactly_one_ledger(self, domain, db):
        service = _service(db)
        request = json.loads(json.dumps({
            "policy": Policy.line(domain).to_spec(),
            "epsilon": 0.5,
            "dataset": {"name": "data"},
            "queries": {"kind": "range_batch", "los": [5, 0], "his": [60, 149]},
            "session": "hammered",
            "budget": 5.0,
        }))

        responses = _hammer(N_THREADS, lambda i: service.handle(dict(request)))

        assert all(r["ok"] for r in responses), responses
        # exactly one Session ever existed for the key
        assert len(service._sessions) == 1
        (session,) = service._sessions.values()
        # one release total: one "miss", every other request reused it free
        cache_states = [r["meta"]["release_cache"]["range"] for r in responses]
        assert cache_states.count("miss") == 1
        # no spend was lost and none double-charged: the per-response deltas
        # sum to exactly what the surviving ledger recorded
        total = sum(r["meta"]["epsilon_spent"] for r in responses)
        assert total == pytest.approx(session.accountant.sequential_total())
        assert session.accountant.sequential_total() == pytest.approx(0.5)
        assert all(r["meta"]["session_total"] == pytest.approx(0.5) for r in responses)
        # every response was answered from the one shared release
        first = responses[0]["answers"]
        assert all(r["answers"] == first for r in responses)

    def test_concurrent_fresh_releases_never_lose_spends(self, domain, db):
        # each thread sends a linear query with a distinct weight row, so
        # every request must charge one fresh sub-batch release
        service = _service(db)
        base = {
            "policy": Policy.line(domain).to_spec(),
            "epsilon": 0.5,
            "dataset": {"name": "data"},
            "session": "spender",
        }

        def worker(i):
            weights = [0.0] * db.n
            weights[i] = 1.0
            request = json.loads(json.dumps({
                **base, "queries": [{"kind": "linear", "weights": weights}]
            }))
            return service.handle(request)

        responses = _hammer(N_THREADS, worker)

        assert all(r["ok"] for r in responses), responses
        assert all(
            r["meta"]["epsilon_spent"] == pytest.approx(0.5) for r in responses
        )
        (session,) = service._sessions.values()
        assert session.accountant.sequential_total() == pytest.approx(0.5 * N_THREADS)
        assert sum(r["meta"]["epsilon_spent"] for r in responses) == pytest.approx(
            session.accountant.sequential_total()
        )


class TestParallelPlans:
    def _plan_request(self, domain, tenant):
        support = [int(i) for i in range(40, 90)]
        return json.loads(json.dumps({
            "op": "plan",
            "policy": Policy.distance_threshold(domain, 4).to_spec(),
            "epsilon": 0.5,
            "dataset": {"name": "data"},
            "queries": [{"kind": "range", "lo": 10, "hi": 100},
                        {"kind": "range", "lo": 0, "hi": 149},
                        {"kind": "count", "support": support}],
            "session": f"tenant-{tenant}",
            "seed": 1234,
        }))

    def test_parallel_plan_ops_match_serial_bitwise(self, domain, db):
        serial = _service(db)
        expected = [
            serial.handle(self._plan_request(domain, i)) for i in range(N_THREADS)
        ]
        assert all(r["ok"] for r in expected), expected

        concurrent = _service(db)
        got = _hammer(
            N_THREADS, lambda i: concurrent.handle(self._plan_request(domain, i))
        )
        assert all(r["ok"] for r in got), got
        for r_serial, r_parallel in zip(expected, got):
            assert r_parallel["answers"] == r_serial["answers"]
            assert r_parallel["plan"]["fingerprint"] == r_serial["plan"]["fingerprint"]

        # one workload, one cached plan, shared across every tenant
        stats = concurrent.pool.plan_cache.stats()
        assert stats["size"] == 1
        assert stats["hits"] >= 1
        assert any(r["meta"]["plan_cache"] == "hit" for r in got)


class TestPoolRaces:
    def test_racing_gets_share_one_engine(self, domain):
        pool = EnginePool()
        policy = Policy.distance_threshold(domain, 6)
        engines = _hammer(N_THREADS, lambda i: pool.get_with_meta(policy, 0.5))
        objects = {id(e) for e, _ in engines}
        assert len(objects) == 1
        assert len(pool) == 1
        flags = [flag for _, flag in engines]
        assert flags.count("miss") == 1
        stats = pool.stats()
        assert stats["hits"] + stats["misses"] == N_THREADS
        assert pool.key(policy, 0.5) in pool

    def test_get_with_meta_is_per_call_not_a_counter_delta(self, domain):
        pool = EnginePool()
        a = Policy.line(domain)
        b = Policy.distance_threshold(domain, 3)
        assert pool.get_with_meta(a, 0.5)[1] == "miss"
        # a different tenant's hit must not mislabel this tenant's miss
        assert pool.get_with_meta(a, 0.5)[1] == "hit"
        assert pool.get_with_meta(b, 0.5)[1] == "miss"
        assert pool.get_with_meta(b, 0.5)[1] == "hit"


class TestPlanCache:
    def test_lru_bound_and_stats(self):
        cache = PlanCache(maxsize=2)
        assert cache.lookup(("a",)) is None
        assert cache.store(("a",), "plan-a") == "plan-a"
        assert cache.store(("b",), "plan-b") == "plan-b"
        assert cache.lookup(("a",)) == "plan-a"  # refreshes "a"
        cache.store(("c",), "plan-c")            # evicts "b"
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) == "plan-a"
        stats = cache.stats()
        assert stats["size"] == 2 and stats["evictions"] == 1
        assert stats["hits"] == 2 and stats["misses"] == 2
        assert len(cache) == 2 and ("a",) in cache

    def test_racing_stores_converge_on_the_incumbent(self):
        cache = PlanCache()
        stored = _hammer(N_THREADS, lambda i: cache.store(("k",), f"plan-{i}"))
        assert len(set(stored)) == 1
        assert cache.lookup(("k",)) == stored[0]
