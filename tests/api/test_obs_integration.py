"""Observability through the serving tier, end to end.

The acceptance claims of the ``repro.obs`` subsystem:

* a single ``"trace": true`` request returns one ``meta.trace`` tree with
  spans covering service → session → planner → executor → mechanism and
  the epsilon charged per release as a span attribute;
* with metrics on, the request path populates the documented counter and
  histogram series, and ``describe`` exposes the snapshot;
* per-dataset calibrated fits are auto-selected at registration and scope
  planning per request (recorded on the plan span), without touching the
  process default;
* a multi-worker sharded run merges per-worker snapshots into one report
  whose counters are exactly the per-worker sums.

Factories are module-level so they pickle under any start method.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro import Database, Domain, Policy, obs
from repro.analysis.bounds import active_calibration_family, calibration
from repro.api import (
    BlowfishService,
    ShardedServiceRunner,
    SQLiteLedgerStore,
)
from repro.api.service import default_calibration_for

EPSILON = 0.5


@pytest.fixture
def service():
    domain = Domain.integers("v", 40)
    rng = np.random.default_rng(7)
    db = Database.from_indices(domain, rng.integers(0, domain.size, 300))
    service = BlowfishService()
    service.register_dataset("data", db)
    service.register_dataset("uniform-ages", db)
    return service, domain


def _plan_request(domain, *, dataset="data", trace=False, session="t1"):
    request = {
        "op": "plan",
        "policy": Policy.line(domain).to_spec(),
        "epsilon": EPSILON,
        "dataset": {"name": dataset},
        "queries": {"kind": "range_batch", "los": [5, 0], "his": [20, 39]},
        "session": session,
        "seed": 3,
    }
    if trace:
        request["trace"] = True
    return request


def _find(node, name):
    if node.get("name") == name:
        return node
    for child in node.get("children", ()):
        found = _find(child, name)
        if found is not None:
            return found
    return None


class TestRequestTracing:
    def test_trace_opt_in_yields_the_full_span_chain(self, service):
        service, domain = service
        response = service.handle(_plan_request(domain, trace=True))
        assert response["ok"], response
        trace = response["meta"]["trace"]

        root = trace
        assert root["name"] == "service.handle"
        attrs = root["attributes"]
        assert attrs["op"] == "plan" and attrs["outcome"] == "ok"
        assert attrs["epsilon"] == EPSILON
        assert attrs["session"] and attrs["policy_fingerprint"]

        for name in (
            "session.plan_execute",
            "session.plan",
            "planner.compile",
            "session.execute",
            "executor.run",
            "executor.step",
            "mechanism.release",
        ):
            assert _find(trace, name) is not None, f"span {name} missing: {trace}"

        compile_span = _find(trace, "planner.compile")
        assert compile_span["attributes"]["cost_model"] == "synthetic-grid"

        release = _find(trace, "mechanism.release")
        assert release["attributes"]["epsilon_charged"] == EPSILON
        assert release["attributes"]["family"]

        charged = [
            s["attributes"]["epsilon_charged"]
            for s in self._walk(trace)
            if s["name"] == "executor.step"
        ]
        assert charged and sum(charged) == response["meta"]["epsilon_spent"]

    @staticmethod
    def _walk(node):
        yield node
        for child in node.get("children", ()):
            yield from TestRequestTracing._walk(child)

    def test_without_opt_in_no_trace_is_attached(self, service):
        service, domain = service
        response = service.handle(_plan_request(domain))
        assert response["ok"]
        assert "trace" not in response["meta"]

    def test_failed_requests_trace_their_outcome(self, service):
        service, _domain = service
        response = service.handle({"op": "nonsense", "trace": True})
        assert not response["ok"]
        trace = response["meta"]["trace"]
        assert trace["attributes"]["outcome"] == "invalid_request"


class TestServiceMetrics:
    def test_request_counters_and_latency_histogram(self, service):
        obs.configure(registry=obs.MetricsRegistry())
        service, domain = service
        assert service.handle(_plan_request(domain))["ok"]
        assert not service.handle({"op": "nonsense"})["ok"]

        reg = obs.metrics()
        assert reg.counter("requests_total", op="plan", outcome="ok").value == 1
        assert (
            reg.counter("requests_total", op="nonsense", outcome="invalid_request").value
            == 1
        )
        assert reg.histogram("request_seconds", op="plan").count == 1
        assert reg.counter("epsilon_spent_total").value == pytest.approx(EPSILON)
        assert reg.counter("plan_requests_total", outcome="miss").value == 1

    def test_snapshot_includes_lru_series_and_describe_carries_it(self, service):
        obs.configure(registry=obs.MetricsRegistry())
        service, domain = service
        service.handle(_plan_request(domain))
        snap = service.metrics_snapshot()
        names = {c["name"] for c in snap["counters"]}
        assert {"requests_total", "lru_hits_total", "lru_misses_total"} <= names
        assert any(
            g["name"] == "lru_size" and g["labels"]["map"] == "sessions"
            for g in snap["gauges"]
        )
        described = service.handle(
            {
                "op": "describe",
                "policy": Policy.line(domain).to_spec(),
                "epsilon": EPSILON,
            }
        )
        assert described["meta"]["metrics"]["counters"]
        assert described["meta"]["dataset_calibrations"] == {
            "uniform-ages": "uniform"
        }

    def test_ledger_budget_gauges_ride_the_snapshot(self, tmp_path):
        obs.configure(registry=obs.MetricsRegistry())
        domain = Domain.integers("v", 40)
        db = Database.from_indices(domain, np.arange(100) % 40)
        service = BlowfishService(
            ledger_store=SQLiteLedgerStore(str(tmp_path / "ledger.sqlite"))
        )
        service.register_dataset("data", db)
        request = _plan_request(domain)
        request["budget"] = 5.0
        assert service.handle(request)["ok"]
        gauges = [
            g
            for g in service.metrics_snapshot()["gauges"]
            if g["name"] == "ledger_spent_epsilon"
        ]
        assert len(gauges) == 1
        assert gauges[0]["value"] == pytest.approx(EPSILON)

    def test_disabled_metrics_record_nothing(self, service):
        service, domain = service
        assert service.handle(_plan_request(domain))["ok"]
        snap = service.metrics_snapshot()
        # only the service-local LRU/ledger series, nothing from the null registry
        assert all(c["name"].startswith("lru_") for c in snap["counters"])


class TestPerDatasetCalibration:
    def test_auto_select_from_the_dataset_name(self, service):
        service, _domain = service
        assert default_calibration_for("uniform-ages") == "uniform"
        assert default_calibration_for("adult-census") == "adult"
        assert default_calibration_for("twitter-replay") == "twitter"
        assert default_calibration_for("skin-pixels") == "skin"
        assert default_calibration_for("payroll") is None
        assert service.dataset_calibration("uniform-ages") == "uniform"
        assert service.dataset_calibration("data") is None

    def test_explicit_unknown_family_is_rejected(self, service):
        service, domain = service
        db = Database.from_indices(domain, np.zeros(10, dtype=int))
        with pytest.raises(ValueError, match="unknown calibration family"):
            service.register_dataset("x", db, calibration="nope")

    def test_calibrated_fit_scopes_the_plan_and_is_recorded(self, service):
        service, domain = service
        response = service.handle(
            _plan_request(domain, dataset="uniform-ages", trace=True, session="t2")
        )
        assert response["ok"], response
        compile_span = _find(response["meta"]["trace"], "planner.compile")
        assert compile_span["attributes"]["cost_model"] == "uniform"
        # scoped per request: the process default is untouched
        assert active_calibration_family() == "synthetic-grid"

    def test_plans_are_not_shared_across_fits(self, service):
        service, domain = service
        first = service.handle(_plan_request(domain, session="t3"))
        second = service.handle(
            _plan_request(domain, dataset="uniform-ages", session="t4")
        )
        assert first["meta"]["plan_cache"] == "miss"
        # same workload, different calibrated fit: must not hit t3's plan
        assert second["meta"]["plan_cache"] == "miss"

    def test_calibration_context_manager(self):
        assert active_calibration_family() == "synthetic-grid"
        with calibration("uniform"):
            assert active_calibration_family() == "uniform"
        assert active_calibration_family() == "synthetic-grid"
        with pytest.raises(KeyError):
            with calibration("nope"):
                pass


# -- sharded runner: merged per-worker metrics --------------------------------------

REPEATS = 2
N_REQUESTS = 8


def _workers_domain():
    return Domain.integers("v", 30)


def _workers_service(ledger_path):
    domain = _workers_domain()
    db = Database.from_indices(domain, np.arange(200) % domain.size)
    service = BlowfishService(ledger_store=SQLiteLedgerStore(ledger_path))
    service.register_dataset("data", db)
    return service


def _workers_session(i):
    return f"client-{i // REPEATS}"


def _workers_request(i):
    domain = _workers_domain()
    query = i // REPEATS
    return {
        "policy": Policy.line(domain).to_spec(),
        "epsilon": EPSILON,
        "dataset": {"name": "data"},
        "queries": [{"kind": "range", "lo": query, "hi": 20 + query}],
        "session": _workers_session(i),
        "budget": 5.0,
        "seed": 50 + query,
    }


class TestMergedWorkerMetrics:
    def _run(self, tmp_path, workers):
        runner = ShardedServiceRunner(
            functools.partial(_workers_service, str(tmp_path / "ledger.sqlite")),
            workers=workers,
            metrics=True,
        )
        return runner.run(N_REQUESTS, _workers_request, shard_key=_workers_session)

    @staticmethod
    def _value(snapshot, kind, name, **labels):
        total = 0.0
        for sample in snapshot.get(kind, ()):
            if sample["name"] == name and all(
                sample["labels"].get(k) == v for k, v in labels.items()
            ):
                total += sample["value"]
        return total

    def test_merged_counters_are_exact_per_worker_sums(self, tmp_path):
        result = self._run(tmp_path, 2)
        assert all(r["ok"] for r in result.responses)
        assert len(result.worker_metrics) == 2
        merged = result.metrics

        # every request entered a worker's async tier exactly once
        assert (
            self._value(merged, "counters", "async_requests_total", outcome="received")
            == N_REQUESTS
        )
        # service.handle ran once per non-coalesced request, and the merged
        # series is exactly the sum of the per-worker series (the pinned
        # merge contract)
        executed = result.tier_stats["executed"]
        handled = self._value(merged, "counters", "requests_total", op="answer")
        assert handled == executed
        assert handled == sum(
            self._value(snap, "counters", "requests_total", op="answer")
            for snap in result.worker_metrics
        )
        # latency histogram merged too: one observation per handled request
        seconds = [
            h
            for h in merged["histograms"]
            if h["name"] == "request_seconds" and h["labels"].get("op") == "answer"
        ]
        assert len(seconds) == 1
        assert seconds[0]["count"] == executed
        assert sum(seconds[0]["counts"]) == executed

    def test_ledger_gauges_merge_by_max_not_sum(self, tmp_path):
        result = self._run(tmp_path, 2)
        gauges = [
            g
            for g in result.metrics["gauges"]
            if g["name"] == "ledger_spent_epsilon"
        ]
        # one gauge per client key; every client paid for exactly one
        # release, and max-merging must not double it across workers
        assert len(gauges) == N_REQUESTS // REPEATS
        for gauge in gauges:
            assert gauge["value"] == pytest.approx(EPSILON)
