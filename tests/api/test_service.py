"""The serving façade: EnginePool sharing, Session ledgers, BlowfishService.

The headline acceptance check lives here too: a policy plus a query batch
serialized to JSON and submitted through ``BlowfishService.handle`` must be
bitwise identical (same seed) to direct ``PolicyEngine`` use.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    CountQuery,
    Database,
    Domain,
    LinearQuery,
    Policy,
    PolicyEngine,
    RangeQuery,
)
from repro.api import BlowfishService, EnginePool, Session
from repro.engine import policy_fingerprint


@pytest.fixture
def domain():
    return Domain.integers("v", 200)


@pytest.fixture
def db(domain):
    rng = np.random.default_rng(3)
    return Database.from_indices(domain, rng.integers(0, domain.size, 2_000))


def _mixed_queries(domain, db, n_ranges=150, seed=11):
    rng = np.random.default_rng(seed)
    los = rng.integers(0, domain.size, n_ranges)
    his = rng.integers(0, domain.size, n_ranges)
    los, his = np.minimum(los, his), np.maximum(los, his)
    queries = [RangeQuery(domain, int(a), int(b)) for a, b in zip(los, his)]
    queries.append(CountQuery.from_mask(domain, np.arange(domain.size) % 3 == 0))
    queries.append(LinearQuery(domain, np.full(db.n, 0.5)))
    return queries


class TestEnginePool:
    def test_structurally_equal_policies_share_an_engine(self, domain):
        pool = EnginePool()
        e1 = pool.get(Policy.distance_threshold(domain, 10), 0.5)
        e2 = pool.get(Policy.distance_threshold(Domain.integers("v", 200), 10), 0.5)
        assert e1 is e2
        assert pool.stats()["hits"] == 1 and pool.stats()["misses"] == 1

    def test_epsilon_and_options_split_entries(self, domain):
        pool = EnginePool()
        p = Policy.line(domain)
        assert pool.get(p, 0.5) is not pool.get(p, 0.9)
        assert pool.get(p, 0.5) is not pool.get(
            p, 0.5, options={"range": {"consistent": False}}
        )
        # option-dict key order is canonicalized
        a = pool.get(p, 0.5, options={"range": {"fanout": 4, "consistent": False}})
        b = pool.get(p, 0.5, options={"range": {"consistent": False, "fanout": 4}})
        assert a is b

    def test_lru_eviction_bounds_the_pool(self, domain):
        pool = EnginePool(maxsize=2)
        engines = [pool.get(Policy.distance_threshold(domain, t), 0.5) for t in (2, 3, 4)]
        assert len(pool) == 2
        assert pool.stats()["evictions"] == 1
        # the evicted (oldest) engine is rebuilt on re-request
        again = pool.get(Policy.distance_threshold(domain, 2), 0.5)
        assert again is not engines[0]

    def test_pooled_engines_have_no_accountant(self, domain):
        assert EnginePool().get(Policy.line(domain), 0.5).accountant is None


class TestSession:
    def test_ledger_and_release_reuse(self, domain, db):
        pool = EnginePool()
        engine = pool.get(Policy.line(domain), 0.5)
        session = Session(engine, db, budget=1.0)
        queries = [RangeQuery(domain, 5, 50), RangeQuery(domain, 0, 199)]
        first = session.answer(queries, rng=0)
        assert session.spent == pytest.approx(0.5)
        # repeats are free post-processing with identical answers
        second = session.answer(queries, rng=1)
        assert np.array_equal(first, second)
        assert session.spent == pytest.approx(0.5)

    def test_sessions_are_isolated_on_a_shared_engine(self, domain, db):
        engine = EnginePool().get(Policy.line(domain), 0.5)
        s1, s2 = Session(engine, db), Session(engine, db)
        a1 = s1.answer([RangeQuery(domain, 1, 9)], rng=0)
        a2 = s2.answer([RangeQuery(domain, 1, 9)], rng=1)
        assert s1.spent == s2.spent == pytest.approx(0.5)
        assert not np.array_equal(a1, a2)  # independent releases

    def test_budget_refused_before_release(self, domain, db):
        session = Session(EnginePool().get(Policy.line(domain), 0.5), db, budget=0.4)
        with pytest.raises(RuntimeError, match="budget exhausted"):
            session.answer([RangeQuery(domain, 1, 9)], rng=0)
        assert session.spent == 0.0

    def test_domain_mismatch_rejected(self, domain, db):
        other = Domain.integers("w", 50)
        engine = EnginePool().get(Policy.line(other), 0.5)
        with pytest.raises(ValueError, match="different domain"):
            Session(engine, db)

    def test_answer_with_meta_reports_cache_state(self, domain, db):
        session = Session(EnginePool().get(Policy.line(domain), 0.5), db)
        _, meta = session.answer_with_meta([RangeQuery(domain, 0, 10)], rng=0)
        assert meta["release_cache"] == {"range": "miss"}
        assert meta["epsilon_spent"] == pytest.approx(0.5)
        _, meta = session.answer_with_meta([RangeQuery(domain, 3, 12)], rng=0)
        assert meta["release_cache"] == {"range": "hit"}
        assert meta["epsilon_spent"] == 0.0


class TestBlowfishService:
    def _request(self, policy, queries, *, seed=9, **extra):
        request = {
            "policy": policy.to_spec(),
            "epsilon": 0.5,
            "dataset": {"name": "data"},
            "queries": [q.to_spec() for q in queries],
            "seed": seed,
        }
        request.update(extra)
        # everything the service sees must survive a real JSON round trip
        return json.loads(json.dumps(request))

    def test_handle_is_bitwise_identical_to_direct_engine_use(self, domain, db):
        policy = Policy.distance_threshold(domain, 12)
        queries = _mixed_queries(domain, db)
        service = BlowfishService()
        service.register_dataset("data", db)
        response = service.handle(self._request(policy, queries, seed=9))
        assert response["ok"], response
        direct = PolicyEngine(policy, 0.5).answer(
            queries, db, rng=np.random.default_rng(9)
        )
        assert np.array_equal(np.array(response["answers"]), direct)
        meta = response["meta"]
        assert meta["n_queries"] == len(queries)
        assert meta["epsilon_spent"] == pytest.approx(1.5)  # range+histogram+linear
        assert meta["strategies"]["range"]["strategy"] == "ordered-hierarchical"
        assert meta["policy_fingerprint"] == policy_fingerprint(policy)

    def test_pure_range_fast_path_matches_direct_use(self, domain, db):
        policy = Policy.line(domain)
        queries = [RangeQuery(domain, 0, 10), RangeQuery(domain, 5, 199)]
        service = BlowfishService()
        service.register_dataset("data", db)
        response = service.handle(self._request(policy, queries, seed=4))
        direct = PolicyEngine(policy, 0.5).answer(queries, db, rng=np.random.default_rng(4))
        assert np.array_equal(np.array(response["answers"]), direct)

    def test_range_batch_spec_form(self, domain, db):
        policy = Policy.line(domain)
        service = BlowfishService()
        service.register_dataset("data", db)
        request = self._request(policy, [], seed=4)
        request["queries"] = {"kind": "range_batch", "los": [0, 5], "his": [10, 199]}
        response = service.handle(request)
        direct = PolicyEngine(policy, 0.5).answer(
            [RangeQuery(domain, 0, 10), RangeQuery(domain, 5, 199)],
            db,
            rng=np.random.default_rng(4),
        )
        assert np.array_equal(np.array(response["answers"]), direct)

    def test_sessions_reuse_releases_across_requests(self, domain, db):
        service = BlowfishService()
        service.register_dataset("data", db)
        request = self._request(
            Policy.line(domain), [RangeQuery(domain, 0, 50)], session="c1", budget=1.0
        )
        first = service.handle(request)
        second = service.handle(request)
        assert first["answers"] == second["answers"]
        assert second["meta"]["epsilon_spent"] == 0.0
        assert second["meta"]["release_cache"] == {"range": "hit"}
        assert second["meta"]["engine_cache"] == "hit"
        assert second["meta"]["session_total"] == pytest.approx(0.5)

    def test_session_budget_enforced_across_requests(self, domain, db):
        service = BlowfishService()
        service.register_dataset("data", db)
        base = self._request(
            Policy.line(domain), [RangeQuery(domain, 0, 50)], session="c2", budget=0.7
        )
        assert service.handle(base)["ok"]
        # a count query needs a histogram release: second 0.5 spend > 0.7
        over = dict(base)
        over["queries"] = [
            CountQuery.from_mask(domain, np.arange(domain.size) < 5).to_spec()
        ]
        refused = service.handle(json.loads(json.dumps(over)))
        assert not refused["ok"]
        assert "budget exhausted" in refused["error"]["message"]
        # budget refusal is structurally distinguishable from bad requests
        assert refused["error"]["kind"] == "budget_exhausted"

    def test_error_kinds_distinguish_client_mistakes_from_budget(self, domain, db):
        service = BlowfishService()
        service.register_dataset("data", db)
        bad = service.handle({"op": "mystery"})
        assert bad["error"]["kind"] == "invalid_request"

    def test_internal_runtime_errors_propagate_instead_of_masquerading(self):
        service = BlowfishService()

        def boom(request):
            raise RuntimeError("internal invariant broken")

        service._dispatch = boom
        # a genuine bug must not come back dressed as a client refusal
        with pytest.raises(RuntimeError, match="internal invariant"):
            service.handle({"op": "describe"})

    def test_differing_budget_on_existing_session_is_surfaced(self, domain, db):
        service = BlowfishService()
        service.register_dataset("data", db)
        base = self._request(
            Policy.line(domain), [RangeQuery(domain, 0, 50)], session="c9", budget=2.0
        )
        first = service.handle(base)
        assert first["ok"] and "budget" not in first["meta"]
        # a later, different budget does not reset the ledger's limit — and
        # the response says so instead of silently dropping it
        second = service.handle({**base, "budget": 1.0})
        assert second["ok"]
        assert second["meta"]["budget"] == {
            "status": "ignored", "requested": 1.0, "active": 2.0,
        }
        # re-stating the active budget is not a conflict worth flagging
        third = service.handle({**base, "budget": 2.0})
        assert third["ok"] and "budget" not in third["meta"]

    def test_inline_datasets(self, domain, db):
        service = BlowfishService()
        request = self._request(Policy.line(domain), [RangeQuery(domain, 0, 50)])
        request["dataset"] = {"indices": db.indices.tolist()}
        response = service.handle(request)
        direct = PolicyEngine(Policy.line(domain), 0.5).answer(
            [RangeQuery(domain, 0, 50)], db, rng=np.random.default_rng(9)
        )
        assert np.array_equal(np.array(response["answers"]), direct)

    def test_errors_name_fields_and_never_raise(self, domain, db):
        service = BlowfishService()
        service.register_dataset("data", db)
        ok = self._request(Policy.line(domain), [RangeQuery(domain, 0, 5)])
        cases = [
            ({}, "request.policy"),
            ({**ok, "epsilon": "high"}, "request.epsilon"),
            ({**ok, "dataset": {"name": "nope"}}, "request.dataset.name"),
            ({**ok, "queries": []}, "request.queries"),
            ({**ok, "queries": [{"kind": "range", "lo": 0, "hi": 9999}]}, "request.queries[0]"),
            ({**ok, "queries": [{"kind": "mystery"}]}, "request.queries[0].kind"),
            ({**ok, "op": "delete"}, "request.op"),
            ({**ok, "version": 99}, "request.version"),
        ]
        for request, field in cases:
            response = service.handle(request)
            assert response["ok"] is False, request
            assert response["error"]["field"] == field, response

    def test_hostile_numeric_payloads_return_errors_not_crashes(self, domain, db):
        service = BlowfishService()
        service.register_dataset("data", db)
        ok = self._request(Policy.line(domain), [RangeQuery(domain, 0, 5)])
        hostile = [
            {**ok, "dataset": {"indices": [2**70]}},           # > 64-bit int
            {**ok, "queries": {"kind": "range_batch", "los": [2**70], "his": [5]}},
            {**ok, "queries": {"kind": "range_batch", "los": [[0, 1]], "his": [[2, 3]]}},
            {**ok, "queries": [{"kind": "range", "lo": [0, 1], "hi": [2, 3]}]},
            {**ok, "queries": [{"kind": "count", "support": [[1]]}]},
        ]
        for request in hostile:
            response = service.handle(request)
            assert response["ok"] is False, request
        # flat-answer contract: a valid request still yields scalars
        good = service.handle(ok)
        assert all(isinstance(a, float) for a in good["answers"])

    def test_session_does_not_cross_mechanism_options(self, domain, db):
        service = BlowfishService()
        service.register_dataset("data", db)
        base = self._request(
            Policy.distance_threshold(domain, 10),
            [RangeQuery(domain, 0, 50)],
            session="c3",
        )
        first = service.handle({**base, "options": {"range": {"fanout": 2}}})
        second = service.handle({**base, "options": {"range": {"fanout": 16}}})
        # a different engine configuration must not be served from the old
        # engine's cached release
        assert second["meta"]["release_cache"] == {"range": "miss"}
        assert second["meta"]["session_total"] == pytest.approx(0.5)
        assert first["answers"] != second["answers"]

    def test_vector_valued_queries_rejected_via_error_response(self, domain, db):
        service = BlowfishService()
        service.register_dataset("data", db)
        request = self._request(Policy.line(domain), [RangeQuery(domain, 0, 5)])
        request["queries"] = [{"kind": "histogram"}]
        response = service.handle(request)
        assert response["ok"] is False
        assert "vector-valued" in response["error"]["message"]

    def test_describe_op(self, domain):
        service = BlowfishService()
        response = service.handle(
            {"op": "describe", "policy": Policy.line(domain).to_spec(), "epsilon": 0.5}
        )
        assert response["ok"]
        strategies = response["meta"]["strategies"]
        assert strategies["range"]["strategy"] == "ordered"
        assert strategies["histogram"]["strategy"] == "laplace-histogram"

    def test_responses_are_json_serializable(self, domain, db):
        service = BlowfishService()
        service.register_dataset("data", db)
        response = service.handle(
            self._request(Policy.line(domain), _mixed_queries(domain, db, 10))
        )
        json.dumps(response)  # must not raise

    def test_dataset_domain_mismatch_named(self, domain, db):
        service = BlowfishService()
        service.register_dataset("data", db)
        other = Policy.line(Domain.integers("w", 7))
        response = service.handle(self._request(other, [RangeQuery(Domain.integers("w", 7), 0, 3)]))
        assert response["ok"] is False
        assert response["error"]["field"] == "request.dataset.name"
