"""SQLite ledger failure modes and the parallel-aware composition report.

A broken budget ledger must fail loudly and quickly — a corrupted file or
a stuck external writer surfaces as :class:`LedgerStoreError` naming the
path, never a hang or a raw ``sqlite3`` exception — while budget refusals
stay :class:`BudgetExceededError` and are counted by the charge metrics.
Plus the readback path nothing consumed before this subsystem:
``LedgerEntry.ids`` scopes round-trip through SQLite and feed
:func:`parallel_aware_totals`.
"""

from __future__ import annotations

import multiprocessing
import sqlite3

import pytest

from repro import Domain, Policy, obs
from repro.api import (
    InMemoryLedgerStore,
    LedgerStoreError,
    SQLiteLedgerStore,
    parallel_aware_totals,
)
from repro.core.composition import BudgetExceededError


class TestCorruptedDatabase:
    def test_garbage_file_raises_a_clear_error(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        path.write_bytes(b"this is definitely not a sqlite database\0" * 64)
        # depending on where SQLite first reads the header this surfaces as
        # "cannot open ..." or "corrupted file or not a SQLite database" —
        # both LedgerStoreError naming the path
        with pytest.raises(LedgerStoreError, match="ledger database"):
            SQLiteLedgerStore(str(path))

    def test_corruption_after_creation_raises_not_hangs(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        store = SQLiteLedgerStore(str(path))
        store.charge("s", 0.5)
        store.close()
        path.write_bytes(b"\xde\xad\xbe\xef" * 1024)
        with pytest.raises(LedgerStoreError):
            SQLiteLedgerStore(str(path))

    def test_unopenable_path_raises_ledger_error(self, tmp_path):
        with pytest.raises(LedgerStoreError, match="cannot open"):
            SQLiteLedgerStore(str(tmp_path / "no" / "such" / "dir" / "l.sqlite"))


class TestLockedDatabase:
    def test_stuck_external_writer_is_a_bounded_error(self, tmp_path):
        path = str(tmp_path / "ledger.sqlite")
        store = SQLiteLedgerStore(path, timeout=0.05)
        store.CHARGE_RETRIES = 1  # keep the test fast; the bound is the point
        blocker = sqlite3.connect(path)
        try:
            blocker.execute("BEGIN IMMEDIATE")  # hold the writer slot
            with pytest.raises(LedgerStoreError, match="stayed locked through"):
                store.charge("s", 0.5)
        finally:
            blocker.rollback()
            blocker.close()
        # slot freed: the same store charges fine (no poisoned state)
        assert store.charge("s", 0.5) == pytest.approx(0.5)

    def test_retries_are_counted_when_metrics_are_on(self, tmp_path):
        reg, _ = obs.configure(registry=obs.MetricsRegistry())
        path = str(tmp_path / "ledger.sqlite")
        store = SQLiteLedgerStore(path, timeout=0.05)
        store.CHARGE_RETRIES = 2
        blocker = sqlite3.connect(path)
        try:
            blocker.execute("BEGIN IMMEDIATE")
            with pytest.raises(LedgerStoreError):
                store.charge("s", 0.5)
        finally:
            blocker.rollback()
            blocker.close()
        assert reg.counter("ledger_charge_retries_total", backend="sqlite").value == 2
        assert reg.counter("ledger_charge_attempts_total", backend="sqlite").value == 1


class TestForkSafety:
    def test_child_reopens_its_own_connection_after_fork(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        store = SQLiteLedgerStore(str(tmp_path / "ledger.sqlite"))
        store.charge("s", 0.5)  # parent connection is live before the fork

        def child(queue):
            try:
                queue.put(store.charge("s", 0.25))
            except BaseException as exc:  # surfaced to the asserting parent
                queue.put(exc)

        queue = ctx.Queue()
        proc = ctx.Process(target=child, args=(queue,))
        proc.start()
        outcome = queue.get(timeout=30)
        proc.join(timeout=30)
        assert outcome == pytest.approx(0.75), outcome
        # the parent's (pre-fork) connection still sees one budget truth
        assert store.total("s") == pytest.approx(0.75)
        assert len(store.entries("s")) == 2


class TestDenialMetrics:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_denial_counts_match_refusals(self, tmp_path, backend):
        reg, _ = obs.configure(registry=obs.MetricsRegistry())
        if backend == "memory":
            store = InMemoryLedgerStore()
        else:
            store = SQLiteLedgerStore(str(tmp_path / "ledger.sqlite"))
        store.charge("s", 0.75, budget=1.0)
        refused = 0
        for _ in range(3):
            with pytest.raises(BudgetExceededError):
                store.charge("s", 0.5, budget=1.0)
            refused += 1
        store.charge("s", 0.25, budget=1.0)  # exact fit still admitted
        assert (
            reg.counter("ledger_charge_denials_total", backend=backend).value == refused
        )
        assert (
            reg.counter("ledger_charge_attempts_total", backend=backend).value
            == refused + 2
        )
        assert store.total("s") == pytest.approx(1.0)


class TestParallelAwareReport:
    @pytest.fixture(params=["memory", "sqlite"])
    def store(self, request, tmp_path):
        if request.param == "memory":
            return InMemoryLedgerStore()
        return SQLiteLedgerStore(str(tmp_path / "ledger.sqlite"))

    def test_ids_round_trip_through_the_store(self, store):
        store.charge("s", 0.5, label="male", ids=frozenset({1, 2, 3}))
        store.charge("s", 0.25, label="global")
        scoped, unscoped = store.entries("s")
        assert scoped.ids == frozenset({1, 2, 3})
        assert unscoped.ids is None

    def test_disjoint_scopes_cost_their_max(self, store):
        policy = Policy.line(Domain.integers("v", 8))
        store.charge("s", 0.2, label="everyone")
        store.charge("s", 0.5, label="left", ids=frozenset({0, 1, 2}))
        store.charge("s", 0.3, label="right", ids=frozenset({3, 4, 5}))
        report = parallel_aware_totals(store, policy)
        row = report["s"]
        assert row["sequential"] == pytest.approx(1.0)
        # Theorem 4.2: the disjoint scoped spends compose in parallel
        assert row["parallel_aware"] == pytest.approx(0.2 + 0.5)
        assert row["entries"] == 3 and row["scoped_entries"] == 2

    def test_overlapping_scopes_fall_back_to_sequential(self, store):
        policy = Policy.line(Domain.integers("v", 8))
        store.charge("s", 0.5, ids=frozenset({1, 2}))
        store.charge("s", 0.3, ids=frozenset({2, 3}))  # overlap on id 2
        row = parallel_aware_totals(store, policy)["s"]
        assert row["parallel_aware"] == pytest.approx(row["sequential"])

    def test_report_covers_every_key(self, store):
        store.charge("a", 0.5)
        store.charge("b", 0.25, ids=frozenset({7}))
        report = parallel_aware_totals(
            store, Policy.line(Domain.integers("v", 8))
        )
        assert sorted(report) == ["a", "b"]
        assert report["b"]["scoped_entries"] == 1
