"""Striped locks and LRU maps: the serving tier's concurrency primitives.

Mirrors :mod:`tests.api.test_concurrency`'s barrier-released thread pools,
but aimed at the primitives directly: per-key exclusivity under
:class:`LockStripes`, one-value-per-key under racing ``adopt`` and
``get_or_create``, exact single-stripe LRU semantics, aggregate bounds,
and the counter contract (get counts hits only; adopt/get_or_create count
the miss; a racing cohort reports exactly one miss and N-1 hits).
"""

from __future__ import annotations

import threading

import pytest

from repro.api import LockStripes, StripedLRU
from repro.api.striping import DEFAULT_STRIPES, default_stripes

N_THREADS = 16


def _hammer(n_threads, worker):
    barrier = threading.Barrier(n_threads)
    results: list = [None] * n_threads
    errors: list = []

    def run(i):
        try:
            barrier.wait()
            results[i] = worker(i)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return results


class TestLockStripes:
    def test_same_key_same_lock(self):
        stripes = LockStripes(8)
        assert stripes.lock_for("k") is stripes.lock_for("k")
        assert len(stripes) == 8

    def test_mutual_exclusion_per_key(self):
        stripes = LockStripes(4)
        counter = {"v": 0}

        def worker(i):
            for _ in range(200):
                with stripes.lock_for("hot"):
                    counter["v"] += 1

        _hammer(N_THREADS, worker)
        assert counter["v"] == N_THREADS * 200

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LockStripes(0)


class TestDefaultStripes:
    def test_small_maps_collapse_to_one_stripe(self):
        # the collapse is what preserves exact global LRU for the small
        # maps the pre-striping tests pin down (PlanCache(maxsize=2) etc.)
        assert default_stripes(2) == 1
        assert default_stripes(15) == 1
        assert default_stripes(16) == 2
        assert default_stripes(10_000) == DEFAULT_STRIPES

    def test_constructor_uses_it(self):
        assert StripedLRU(8).stripes == 1
        assert StripedLRU(256).stripes == DEFAULT_STRIPES
        assert StripedLRU(256, stripes=3).stripes == 3


class TestSingleStripeLRU:
    """With stripes=1 the map must be bit-for-bit the old global LRU."""

    def test_exact_lru_order_and_stats(self):
        lru = StripedLRU(2, stripes=1)
        assert lru.get("a") is None
        lru.record_miss("a")
        lru.adopt("a", "A", count=False)
        lru.adopt("b", "B", count=False)
        assert lru.get("a") == "A"  # refreshes "a"
        lru.adopt("c", "C", count=False)  # evicts "b"
        assert lru.get("b") is None
        assert lru.get("a") == "A"
        stats = lru.stats()
        assert stats["size"] == 2 and stats["evictions"] == 1
        assert stats["hits"] == 2 and stats["misses"] == 1
        assert len(lru) == 2 and "a" in lru and "b" not in lru

    def test_peek_is_invisible(self):
        lru = StripedLRU(2, stripes=1)
        lru.adopt("a", "A", count=False)
        lru.adopt("b", "B", count=False)
        assert lru.peek("a") == "A"  # no refresh...
        lru.adopt("c", "C", count=False)
        assert lru.peek("a") is None  # ...so "a" was still the LRU victim
        assert lru.stats()["hits"] == 0

    def test_byte_bound_evicts_lru_first(self):
        lru = StripedLRU(100, stripes=1, max_bytes=10)
        lru.adopt("a", "A", nbytes=4, count=False)
        lru.adopt("b", "B", nbytes=4, count=False)
        lru.adopt("c", "C", nbytes=4, count=False)  # 12 bytes > 10: drop "a"
        assert "a" not in lru and "b" in lru and "c" in lru
        stats = lru.stats()
        assert stats["bytes"] == 8 and stats["max_bytes"] == 10
        assert stats["evictions"] == 1

    def test_clear_keeps_counters(self):
        lru = StripedLRU(4, stripes=1)
        lru.adopt("a", "A")
        lru.get("a")
        lru.clear()
        assert len(lru) == 0
        assert lru.stats()["hits"] == 1 and lru.stats()["misses"] == 1


class TestStripedBounds:
    def test_aggregate_size_never_exceeds_maxsize(self):
        lru = StripedLRU(64, stripes=8)
        for i in range(1_000):
            lru.adopt(f"k{i}", i, count=False)
        assert len(lru) <= 64
        assert lru.stats()["size"] == len(lru)

    def test_values_snapshot(self):
        lru = StripedLRU(64, stripes=8)
        for i in range(10):
            lru.adopt(f"k{i}", i, count=False)
        assert sorted(lru.values()) == list(range(10))


class TestRacingAdopt:
    def test_first_insert_wins_everyone_adopts_it(self):
        lru = StripedLRU(256)
        results = _hammer(N_THREADS, lambda i: lru.adopt("key", f"value-{i}"))
        winners = {id(v) for v, _ in results}
        assert len(winners) == 1
        flags = [flag for _, flag in results]
        assert flags.count("miss") == 1 and flags.count("hit") == N_THREADS - 1
        stats = lru.stats()
        assert stats["hits"] + stats["misses"] == N_THREADS

    def test_get_then_adopt_counts_one_event_per_call(self):
        # the EnginePool pattern: get (absence uncounted) then adopt
        lru = StripedLRU(256)

        def worker(i):
            value = lru.get("key")
            if value is not None:
                return value, "hit"
            return lru.adopt("key", object())

        results = _hammer(N_THREADS, worker)
        assert len({id(v) for v, _ in results}) == 1
        stats = lru.stats()
        assert stats["hits"] + stats["misses"] == N_THREADS
        assert stats["misses"] == 1

    def test_racing_get_or_create_runs_factory_once(self):
        lru = StripedLRU(256)
        built = []

        def factory():
            value = object()
            built.append(value)
            return value

        results = _hammer(N_THREADS, lambda i: lru.get_or_create("session", factory))
        assert len(built) == 1
        assert all(value is built[0] for value, _ in results)
        assert sum(1 for _, created in results if created) == 1

    def test_distinct_keys_race_cleanly(self):
        lru = StripedLRU(256)
        _hammer(N_THREADS, lambda i: lru.adopt(f"key-{i}", i))
        assert len(lru) == N_THREADS
        stats = lru.stats()
        assert stats["misses"] == N_THREADS and stats["hits"] == 0


class TestValidation:
    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            StripedLRU(0)
        with pytest.raises(ValueError):
            StripedLRU(4, max_bytes=0)
        with pytest.raises(ValueError):
            StripedLRU(4, stripes=0)
