"""Private CDF applications: quantiles, equi-depth histograms and a k-d
index from one release (paper Section 7.1).

"Releasing the CDF has many applications including computing quantiles and
histograms, answering range queries and constructing indexes (e.g. k-d
tree)."  This example releases the capital-loss cumulative histogram ONCE
under a theta=100 Blowfish policy and derives all of them as free
post-processing — no further privacy spend.

Run:  python examples/private_cdf_index.py
"""

import numpy as np

from repro import Policy
from repro.analysis import build_kd_index, equi_depth_histogram, estimate_quantiles
from repro.datasets import adult_capital_loss_dataset
from repro.mechanisms import OrderedHierarchicalMechanism


def main() -> None:
    db = adult_capital_loss_dataset(rng=0)
    epsilon = 0.5
    policy = Policy.distance_threshold(db.domain, 100)
    released = OrderedHierarchicalMechanism(policy, epsilon, fanout=16).release(
        db, rng=11
    )
    print(
        f"one (eps={epsilon}, theta=100) release of the capital-loss CDF; "
        "everything below is post-processing\n"
    )

    # -- quantiles ------------------------------------------------------------------
    qs = (0.5, 0.9, 0.95, 0.99)
    est = estimate_quantiles(released, qs)
    cum = db.cumulative_histogram()
    true = [int(np.searchsorted(cum, q * db.n, side="left")) for q in qs]
    print("quantiles of capital loss (value index):")
    for q, e, t in zip(qs, est, true):
        print(f"  q={q:<5}  private {e:5d}   true {t:5d}")

    # -- equi-depth histogram ---------------------------------------------------------
    nonzero = released.range(1, db.domain.size - 1)
    print(f"\nestimated filers with a non-zero loss: {nonzero:.0f} "
          f"(true {db.range_count(1, db.domain.size - 1)})")
    edges, counts = equi_depth_histogram(released, 8)
    print("8-bucket equi-depth histogram (edges are value indices):")
    for (a, b), c in zip(zip(edges[:-1], edges[1:]), counts):
        print(f"  [{a:5d}, {b:5d})  ~{c:8.0f} filers")

    # -- k-d index ----------------------------------------------------------------------
    root = build_kd_index(released, max_depth=3)
    leaves = root.leaves()
    print(f"\nmedian-split index (depth {root.depth()}, {len(leaves)} leaves):")
    for leaf in leaves:
        print(f"  [{leaf.lo:5d}, {leaf.hi:5d}]  ~{leaf.count:8.0f} records")
    print(
        "\nbalanced leaf loads from one noisy CDF — a query planner can use"
        "\nthese page boundaries without touching the raw data again."
    )


if __name__ == "__main__":
    main()
