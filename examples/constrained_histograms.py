"""Constrained histograms: releasing data an adversary already partially
knows (the paper's Section 8).

A hospital already published its per-department patient counts (a marginal).
Releasing a differentially-private full histogram calibrated to the usual
sensitivity 2 now *under-protects*: the adversary can combine the noisy
counts with the known marginal and average away the noise (the Section 3.2
attack).  Blowfish prices the constraint in: the policy graph yields
S(h, P) = 2*size(C), and the demo below audits both calibrations against
the exact constrained neighbor set.

Run:  python examples/constrained_histograms.py
"""

import numpy as np

from repro import Attribute, Database, Domain, Policy
from repro.constraints import (
    MarginalConstraintSet,
    PolicyGraph,
    is_sparse,
    marginal_queries,
)
from repro.core.audit import laplace_realized_epsilon
from repro.mechanisms import ConstrainedHistogramMechanism


def main() -> None:
    domain = Domain(
        [
            Attribute("department", ["cardio", "neuro"]),
            Attribute("outcome", ["recovered", "readmitted"]),
        ]
    )
    db = Database.from_values(
        domain,
        [
            ("cardio", "recovered"),
            ("cardio", "recovered"),
            ("cardio", "readmitted"),
            ("neuro", "recovered"),
        ],
    )
    constraints = MarginalConstraintSet(domain, [["department"]], db)
    policy = Policy.full_domain(domain, constraints)
    print("published knowledge: per-department counts "
          f"{dict(zip(['cardio', 'neuro'], [3, 1]))}")

    # -- the policy graph machinery -------------------------------------------------
    queries = marginal_queries(domain, ["department"])
    print(f"constraint queries sparse w.r.t. K? {is_sparse(queries, policy.graph)}")
    pg = PolicyGraph(policy.graph, queries)
    print(
        f"policy graph: alpha={pg.alpha()}, xi={pg.xi()} "
        f"-> S(h, P) = {pg.sensitivity_bound():.0f}  (Theorem 8.4: 2*size(C) = 4)\n"
    )

    epsilon = 0.5
    mech = ConstrainedHistogramMechanism(policy, epsilon)
    released = mech.release(db, rng=0)
    print(f"released histogram (Lap({mech.scale:.0f}) per cell):")
    for idx, est in enumerate(released):
        print(f"  {domain.value_of(idx)}: {est:6.2f}   (true {int(db.histogram()[idx])})")

    # -- audit both calibrations against the exact neighbor set ---------------------
    print("\nprivacy audit over the exact constrained neighbor set N(P):")
    realized = laplace_realized_epsilon(
        lambda d: d.histogram(), policy, mech.scale, n=db.n
    )
    print(f"  Blowfish calibration (scale {mech.scale:.0f}): realized eps = "
          f"{realized:.3f}  (target {epsilon})")
    naive_scale = 2.0 / epsilon
    leaked = laplace_realized_epsilon(
        lambda d: d.histogram(), policy, naive_scale, n=db.n
    )
    print(f"  naive DP calibration (scale {naive_scale:.0f}):    realized eps = "
          f"{leaked:.3f}  <- the Section 3.2 leak")


if __name__ == "__main__":
    main()
