"""The Section 3.2 reconstruction attack, end to end.

A table has one attribute with values r_1..r_k; the pairwise sums
c(r_i) + c(r_{i+1}) were published long ago.  A data curator now releases
all k counts with plain differential privacy (Lap(2/eps) per count).  The
adversary telescopes the public sums into k independent estimators of every
count and averages: variance drops from 2(2/eps)^2 to 2(2/eps)^2/k, and the
table is reconstructed almost exactly.

Blowfish's fix (Section 8): the constraints make the counts correlated, the
policy graph prices that in (S(h, P) grows with the chain), and the same
attack gains nothing.

Run:  python examples/reconstruction_attack.py
"""

import numpy as np

from repro.analysis.attacks import attack_variance, chain_constraint_attack, chain_sums


def main() -> None:
    rng = np.random.default_rng(42)
    k, eps = 16, 0.5
    counts = rng.integers(20, 80, k).astype(np.float64)
    sums = chain_sums(counts)  # the public auxiliary knowledge
    print(f"k = {k} counts; published pairwise sums; eps = {eps}\n")

    trials = 2000

    def mse_of_attack(scale: float) -> tuple[float, float]:
        naive_err, attack_err = [], []
        for t in range(trials):
            local = np.random.default_rng(t)
            noisy = counts + local.laplace(0, scale, k)
            naive_err.append(np.mean((noisy - counts) ** 2))
            attack_err.append(
                np.mean((chain_constraint_attack(noisy, sums) - counts) ** 2)
            )
        return float(np.mean(naive_err)), float(np.mean(attack_err))

    dp_scale = 2.0 / eps
    naive, attacked = mse_of_attack(dp_scale)
    print("differential privacy calibration (Lap(2/eps) per count):")
    print(f"  per-count MSE as released:    {naive:8.1f}")
    theory = (2 * dp_scale**2) / attack_variance(k, eps)
    print(f"  per-count MSE after attack:   {attacked:8.1f}   "
          f"<- ~{naive / attacked:.0f}x breach (theory: k = {theory:.0f}x)")

    blowfish_scale = (2.0 * k) / eps  # the chain couples all k counts
    naive_b, attacked_b = mse_of_attack(blowfish_scale)
    print("\nBlowfish calibration (noise priced to the constrained S(h, P)):")
    print(f"  per-count MSE as released:    {naive_b:8.1f}")
    print(f"  per-count MSE after attack:   {attacked_b:8.1f}   "
          "<- averaging gains nothing beyond the nominal guarantee")
    print(
        f"\nafter the attack, the Blowfish release still carries "
        f"{attacked_b / attacked:.0f}x more uncertainty than the broken DP one —"
        "\nexactly the privacy the constraints were silently destroying."
    )


if __name__ == "__main__":
    main()
