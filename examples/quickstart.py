"""Quickstart: Blowfish policies in five minutes.

Walks through the core loop of the library: build a domain and a database,
pick a policy (differential privacy is just the complete-graph policy),
see how the policy changes the noise a query needs — then drive the whole
thing the way a deployment does, through the declarative spec API
(:mod:`repro.api`): the policy becomes a JSON document, queries become JSON
documents, and `BlowfishService.handle` answers them with budget accounting
and release reuse.

Run:  python examples/quickstart.py
"""

import json

import numpy as np

from repro import CountQuery, Database, Domain, Policy, PolicyEngine, RangeQuery
from repro.api import BlowfishService
from repro.core.sensitivity import cumulative_histogram_sensitivity


def main() -> None:
    rng = np.random.default_rng(0)

    # -- a salary-bucket domain and a synthetic workforce ------------------------
    domain = Domain.integers("salary_bucket", 100)
    db = Database.from_indices(
        domain, np.clip(rng.normal(45, 18, size=5_000), 0, 99).astype(int)
    )
    print(f"database: {db.n} individuals over {domain.size} salary buckets\n")

    # -- policies are the tuning knob ---------------------------------------------
    policies = {
        "differential privacy (complete graph)": Policy.differential_privacy(domain),
        "distance threshold theta=10": Policy.distance_threshold(domain, 10),
        "line graph (adjacent buckets)": Policy.line(domain),
    }

    epsilon = 0.5
    print(f"cumulative-histogram sensitivity at epsilon={epsilon}:")
    for label, policy in policies.items():
        sens = cumulative_histogram_sensitivity(policy)
        print(f"  {label:42s} S(S_T, P) = {sens:6.0f}  -> Lap({sens / epsilon:.0f})")
    print()

    # -- a policy is a JSON document (the spec API) -------------------------------
    line = policies["line graph (adjacent buckets)"]
    spec_json = json.dumps(line.to_spec())
    print("a policy serializes to a spec any client can submit:")
    print(f"  {spec_json[:96]}...")
    print(f"  ({len(spec_json)} bytes; Policy.from_spec(json.loads(...)) rebuilds it)\n")

    # -- the serving facade: pure-JSON requests in, answers + metadata out --------
    service = BlowfishService()
    service.register_dataset("payroll", db)

    request = {
        "policy": json.loads(spec_json),
        "epsilon": epsilon,
        "dataset": {"name": "payroll"},
        "queries": [
            {"kind": "range", "lo": 40, "hi": 60},
            {"kind": "range", "lo": 0, "hi": 49},
            {"kind": "count", "support": list(range(90, 100)), "name": "top decile"},
        ],
        "session": "analyst-1",
        "budget": 4 * epsilon,
        "seed": 0,
    }
    response = service.handle(request)
    meta = response["meta"]
    print("BlowfishService.handle(request) ->")
    true_answers = [
        db.range_count(40, 60),
        db.range_count(0, 49),
        int(np.count_nonzero(db.indices >= 90)),
    ]
    for q, est, true in zip(request["queries"], response["answers"], true_answers):
        print(f"  {q['kind']:6s} {str(q.get('lo', q.get('name'))):>10s} "
              f"-> {est:9.1f}   (true {true})")
    print(f"  strategy: {meta['strategies']['range']['strategy']} (follows the line graph)")
    print(f"  spent {meta['epsilon_spent']} of budget {request['budget']}\n")

    # -- repeats are free post-processing ------------------------------------------
    again = service.handle(request)
    print(
        "the same request again costs nothing "
        f"(epsilon_spent={again['meta']['epsilon_spent']}, "
        f"release_cache={again['meta']['release_cache']}), and the answers are "
        f"identical: {again['answers'] == response['answers']}\n"
    )

    # -- the facade is exactly the engine, as data ---------------------------------
    direct = PolicyEngine(line, epsilon).answer(
        [  # the same workload, as Python objects
            RangeQuery(domain, 40, 60),
            RangeQuery(domain, 0, 49),
            CountQuery.from_mask(domain, np.arange(domain.size) >= 90, name="top decile"),
        ],
        db,
        rng=np.random.default_rng(0),
    )
    print(f"direct PolicyEngine use with the same seed is bitwise identical: "
          f"{np.array_equal(direct, np.array(response['answers']))}\n")

    # -- what the weaker policy costs: Eqn (9) -----------------------------------
    print("indistinguishability degrades with graph distance (Eqn 9):")
    for gap in (1, 10, 50):
        d = line.graph.graph_distance(0, gap)
        print(
            f"  buckets 0 vs {gap:3d}: an attacker's max odds ratio is "
            f"exp({epsilon:.1f} * {d:.0f}) = e^{epsilon * d:.1f}"
        )
    print(
        "\nadjacent buckets stay protected at full strength; far-apart buckets"
        "\nare deliberately sacrificed — that is the policy trade-off."
    )


if __name__ == "__main__":
    main()
