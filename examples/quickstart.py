"""Quickstart: Blowfish policies in five minutes.

Walks through the core loop of the library: build a domain and a database,
pick a policy (differential privacy is just the complete-graph policy),
calibrate the Laplace mechanism to the policy-specific sensitivity, and
watch the noise shrink as the policy weakens — then see what a policy
*costs* via the graph-distance guarantee of Eqn (9).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Database, Domain, HistogramQuery, Policy
from repro.core.sensitivity import cumulative_histogram_sensitivity
from repro.mechanisms import LaplaceMechanism, OrderedMechanism


def main() -> None:
    rng = np.random.default_rng(0)

    # -- a salary-bucket domain and a synthetic workforce ------------------------
    domain = Domain.integers("salary_bucket", 100)
    db = Database.from_indices(
        domain, np.clip(rng.normal(45, 18, size=5_000), 0, 99).astype(int)
    )
    print(f"database: {db.n} individuals over {domain.size} salary buckets\n")

    # -- policies are the tuning knob ---------------------------------------------
    policies = {
        "differential privacy (complete graph)": Policy.differential_privacy(domain),
        "distance threshold theta=10": Policy.distance_threshold(domain, 10),
        "line graph (adjacent buckets)": Policy.line(domain),
    }

    epsilon = 0.5
    print(f"cumulative-histogram sensitivity at epsilon={epsilon}:")
    for label, policy in policies.items():
        sens = cumulative_histogram_sensitivity(policy)
        print(f"  {label:42s} S(S_T, P) = {sens:6.0f}  -> Lap({sens / epsilon:.0f})")
    print()

    # -- the histogram itself doesn't care (Section 5) ... ----------------------
    hist_mech = LaplaceMechanism(
        policies["line graph (adjacent buckets)"], epsilon, HistogramQuery(domain)
    )
    print(
        "per-cell histogram noise is the same under every policy with an edge: "
        f"Lap({hist_mech.scale:.0f})\n"
    )

    # -- ... but the ordered mechanism exploits the line graph (Section 7.1) ----
    released = OrderedMechanism(Policy.line(domain), epsilon).release(db, rng=rng)
    lo, hi = 40, 60
    true = db.range_count(lo, hi)
    est = released.range(lo, hi)
    print(f"range query 'buckets {lo}-{hi}':")
    print(f"  true count   = {true}")
    print(f"  private est. = {est:.1f}   (error bound 4/eps^2 = {4 / epsilon**2:.0f})")
    print(f"  median bucket estimate: {released.quantile(0.5)}\n")

    # -- what the weaker policy costs: Eqn (9) -----------------------------------
    line = Policy.line(domain)
    print("indistinguishability degrades with graph distance (Eqn 9):")
    for gap in (1, 10, 50):
        d = line.graph.graph_distance(0, gap)
        print(
            f"  buckets 0 vs {gap:3d}: an attacker's max odds ratio is "
            f"exp({epsilon:.1f} * {d:.0f}) = e^{epsilon * d:.1f}"
        )
    print(
        "\nadjacent buckets stay protected at full strength; far-apart buckets"
        "\nare deliberately sacrificed — that is the policy trade-off."
    )


if __name__ == "__main__":
    main()
