"""Census range queries: the ordered hierarchical mechanism end to end
(the paper's Section 7 / Figure 2(b) scenario).

An agency publishes capital-loss statistics.  Analysts need arbitrary range
queries ("how many filers lost between $1,500 and $2,000?").  Under
differential privacy the best tool is the hierarchical mechanism with
O(log^3|T|) error; under a Blowfish policy that only hides losses within
$100 of each other, the OH tree collapses most of that error into the
cheap S-chain.

Run:  python examples/census_range_queries.py
"""

import numpy as np

from repro import Policy
from repro.analysis import random_range_queries, true_range_answers
from repro.datasets import adult_capital_loss_dataset
from repro.mechanisms import (
    HierarchicalMechanism,
    OrderedHierarchicalMechanism,
    optimal_budget_split,
)


def main() -> None:
    db = adult_capital_loss_dataset(rng=0)
    size = db.domain.size
    print(f"synthetic capital-loss data: n={db.n}, domain size {size}\n")

    epsilon, fanout, trials = 0.5, 16, 10
    rng = np.random.default_rng(2)
    los, his = random_range_queries(size, 2000, rng)
    truth = true_range_answers(db.cumulative_histogram(), los, his)

    def mse_of(mech) -> float:
        errs = []
        for t in range(trials):
            rel = mech.release(db, rng=1000 + t)
            errs.append(float(np.mean((rel.ranges(los, his) - truth) ** 2)))
        return float(np.mean(errs))

    print(f"{'mechanism / policy':40s} {'range-query MSE':>16s}")
    baseline = HierarchicalMechanism(
        Policy.differential_privacy(db.domain), epsilon, fanout=fanout
    )
    print(f"{'hierarchical (differential privacy)':40s} {mse_of(baseline):16.1f}")

    for theta in (500, 100, 10, 1):
        policy = Policy.distance_threshold(db.domain, theta)
        mech = OrderedHierarchicalMechanism(policy, epsilon, fanout=fanout)
        eps_s, eps_h = mech.eps_s, mech.eps_h
        label = f"ordered hierarchical, theta={theta}"
        print(
            f"{label:40s} {mse_of(mech):16.1f}"
            f"   (eps_S={eps_s:.3f}, eps_H={eps_h:.3f})"
        )

    # show the Eqn (15) budget optimizer at work
    print("\nEqn (15) optimal budget split for theta=100:")
    eps_s, eps_h = optimal_budget_split(size, 100, fanout, epsilon)
    print(f"  eps_S* = {eps_s:.4f}, eps_H* = {eps_h:.4f} (of eps = {epsilon})")

    # derived statistics are free post-processing
    policy = Policy.distance_threshold(db.domain, 100)
    rel = OrderedHierarchicalMechanism(policy, epsilon, fanout=fanout).release(db, rng=7)
    print("\nfree post-processing on the released structure:")
    print(f"  filers with zero loss (estimate): {rel.range(0, 0):.0f}")
    print(f"  filers losing 1500-2000:          {rel.range(1500, 2000):.0f}")
    print(f"  true values:                      {db.range_count(0, 0)}, "
          f"{db.range_count(1500, 2000)}")


if __name__ == "__main__":
    main()
