"""Per-individual secrets: privacy opt-outs inside one release
(paper Section 3.1's heterogeneity extension).

A survey panel contains regular respondents, one public figure whose
answers need the full-domain guarantee, and volunteers who explicitly
opted out of privacy protection.  A single Blowfish release handles all
three: each individual's tuple is perturbed according to *their* secret
graph, and sensitivity (hence noise) is driven by the strongest graph
actually present.

Run:  python examples/opt_out_individuals.py
"""

import numpy as np

from repro import Database, Domain
from repro.core.graphs import FullDomainGraph, LineGraph
from repro.core.individual import IndividualPolicy, IndividualRandomizedResponse


def main() -> None:
    rng = np.random.default_rng(4)
    domain = Domain.integers("response", 5)  # 1..5 Likert, say
    n = 12
    db = Database.from_indices(domain, rng.integers(0, 5, n))

    policy = IndividualPolicy(
        domain,
        default_graph=LineGraph(domain),       # regular respondents: adjacent
        overrides={0: FullDomainGraph(domain)},  # the public figure: everything
        agnostic=[10, 11],                       # opted out of privacy
    )
    print(policy, "\n")

    print("sensitivities for this panel:")
    print(f"  histogram:  {policy.histogram_sensitivity(n)}")
    print(f"  cumulative: {policy.cumulative_histogram_sensitivity(n)}"
          "   (driven by the one full-domain individual)")
    uniform = IndividualPolicy(domain, LineGraph(domain))
    print(f"  ... without the public figure it would be: "
          f"{uniform.cumulative_histogram_sensitivity(n)}\n")

    mech = IndividualRandomizedResponse(policy, epsilon=1.0, n=n)
    released = mech.release(db, rng=7)
    print("idx  true  released  protection")
    labels = (
        ["full domain"] + ["adjacent values"] * 9 + ["none (opt-out)"] * 2
    )
    for i in range(n):
        print(f"{i:3d}  {db[i]:4d}  {released[i]:8d}  {labels[i]}")

    print(
        "\nopt-out rows pass through exactly; the public figure's row mixes"
        "\nover the whole domain; everyone else mixes locally."
    )


if __name__ == "__main__":
    main()
