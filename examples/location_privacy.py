"""Location privacy: k-means over geotagged data under distance-threshold
policies (the paper's Section 6 motivation).

A location-based service wants cluster centers of its users' positions.
Differential privacy must hide *which coast* you are on; a Blowfish
``G^{L1,theta}`` policy only promises that points within ``theta`` km are
indistinguishable — "the adversary may learn I'm in Seattle, but not which
block" — and buys an order of magnitude of clustering accuracy back.

Run:  python examples/location_privacy.py
"""

import numpy as np

from repro import Policy
from repro.core.sensitivity import ksum_sensitivity
from repro.datasets import twitter_dataset
from repro.experiments import quick_scale, twitter_partition
from repro.mechanisms import PrivateKMeans, lloyd_kmeans
from repro.mechanisms.kmeans import _init_centroids


def main() -> None:
    db = twitter_dataset(n=30_000, rng=0)
    points = db.points()
    print(f"synthetic western-US tweets: {db.n} points on a 400x300 5km grid\n")

    epsilon, k, iters, trials = 0.4, 4, 10, 8
    policies = {
        "differential privacy": Policy.differential_privacy(db.domain),
        "blowfish theta=1000km": Policy.distance_threshold(db.domain, 1000.0),
        "blowfish theta=100km": Policy.distance_threshold(db.domain, 100.0),
        "partitioned (grid cells)": Policy.partitioned(twitter_partition(120000)),
    }

    print(f"{'policy':28s} {'S(q_sum)':>10s} {'objective ratio':>16s}")
    rng = np.random.default_rng(1)
    for label, policy in policies.items():
        mech = PrivateKMeans(policy, epsilon, k=k, iterations=iters)
        ratios = []
        for _ in range(trials):
            init = _init_centroids(points, k, rng)
            base = lloyd_kmeans(points, k, iters, rng=rng, init_centroids=init)
            result = mech.release(db, rng=rng, init_centroids=init)
            ratios.append(result.objective / base.objective)
        print(
            f"{label:28s} {ksum_sensitivity(policy):10.0f} "
            f"{np.mean(ratios):16.3f}"
        )

    print(
        "\nratio 1.0 = as good as non-private k-means."
        "\nNote the partitioned policy: the histogram of grid cells has zero"
        "\nsensitivity, so clustering is exact — the paper's partition|120000."
    )


if __name__ == "__main__":
    main()
