#!/usr/bin/env python
"""Privacy-flow lint: AST checks that keep the privacy seams tight.

A differential-privacy codebase has a small number of *seams* through which
all privacy-relevant effects must flow: budget is spent through the
accountant/ledger seam, randomness is drawn through the mechanism rng seam,
shared state is guarded by a small lock hierarchy, and the layering keeps
the core algebra ignorant of the serving tier.  Each rule below pins one of
those seams so a refactor cannot quietly route around it.

Rules
-----
``PL001`` budget spends outside the sanctioned charge sites
    ``.spend(...)`` / ``.charge(...)`` method calls are only legal in the
    accountant/ledger implementations themselves and the two executors that
    are audited to charge exactly once per release
    (:mod:`repro.core.composition`, :mod:`repro.engine.engine`,
    :mod:`repro.stream.mechanisms`, :mod:`repro.api.ledger`).

``PL002`` raw randomness outside the rng seam
    The stdlib ``random`` module is banned everywhere; the module-level
    ``np.random.*`` namespace is banned except for seed plumbing
    (``default_rng`` / ``Generator`` / ``SeedSequence`` / ``BitGenerator``
    / ``PCG64``).  All draws must go through a passed-in
    ``np.random.Generator`` so seeding stays deterministic and auditable.
    :mod:`repro.core.rng` is the seam and is exempt.

``PL003`` lock-order violations
    Stripe locks (``LockStripes.lock_for``) and the service's registry
    locks (``_datasets_lock`` et al.) are *leaf* locks: nothing may be
    acquired while one is held.  Violations deadlock under contention.

``PL004`` layering violations
    The algebra layers (``core``/``engine``/``plan``/``stream``/
    ``mechanisms``/``constraints``/``analysis``/``datasets``/``check``)
    must not import the serving tier (``repro.api``), and ``repro.core``
    may only import ``repro.core`` / ``repro.obs``.  The HTTP front end
    (``repro.net``) sits strictly *above* the service boundary: it may
    import ``repro.net`` / ``repro.api`` / ``repro.obs`` but never an
    algebra layer directly — everything it serves flows through
    ``BlowfishService.handle``.

``PL005`` obs purity
    ``repro.obs`` is the stdlib-only base of the stack: importing any
    ``repro.*`` sibling or third-party package from it recreates the
    import cycles it exists to break.

Usage::

    python tools/privacy_lint.py src/repro            # exit 1 on findings
    python tools/privacy_lint.py --json src/repro

Only the standard library is used, so the lint runs anywhere CPython does.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from dataclasses import dataclass

CODES: dict[str, str] = {
    "PL001": "budget spend/charge outside the sanctioned charge sites",
    "PL002": "raw randomness outside the rng seam",
    "PL003": "lock acquired while a leaf lock is held",
    "PL004": "layering violation (lower layer imports the serving tier)",
    "PL005": "repro.obs must stay stdlib-only",
}

#: Files (matched by normalized path suffix) allowed to call .spend()/.charge().
CHARGE_SEAMS = (
    "repro/core/composition.py",
    "repro/engine/engine.py",
    "repro/stream/mechanisms.py",
    "repro/api/ledger.py",
)

#: The one module allowed to touch np.random directly (it IS the seam).
RNG_SEAMS = ("repro/core/rng.py",)

#: np.random attributes that plumb seeds rather than draw randomness.
RNG_SEED_PLUMBING = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}
)

#: Lock attribute names that are leaves of the lock hierarchy: nothing may
#: be acquired while one is held.
LEAF_LOCK_NAMES = frozenset({"_datasets_lock", "_collectors_lock", "_oversize_lock"})

#: Package segments (under repro/) that must never import repro.api.
API_FORBIDDEN_LAYERS = frozenset(
    {
        "core",
        "engine",
        "plan",
        "stream",
        "mechanisms",
        "constraints",
        "analysis",
        "datasets",
        "obs",
        "check",
    }
)

#: Targets (under repro/) the HTTP front end may import: itself, the JSON
#: service boundary and observability — never an algebra layer directly.
NET_ALLOWED_TARGETS = frozenset({"net", "api", "obs"})

#: Stdlib-ish prefixes repro.obs may import (everything else is a finding).
_OBS_ALLOWED_THIRD_PARTY: frozenset = frozenset()


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a file and line."""

    code: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


def _matches_any(path: str, suffixes) -> bool:
    norm = _norm(path)
    return any(norm.endswith(s) for s in suffixes)


def _module_parts(path: str) -> list[str]:
    """The repro-relative package parts of ``path`` (empty if outside repro)."""
    parts = _norm(path).split("/")
    if "repro" in parts:
        return parts[parts.index("repro") + 1 :]
    return []


def _dotted(node: ast.AST) -> str | None:
    """Render an attribute chain like ``np.random.default_rng`` (or None)."""
    names: list[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
        return ".".join(reversed(names))
    return None


# -- PL001: budget charge seam ---------------------------------------------------------


def _check_charge_seam(tree: ast.AST, path: str, findings: list[Finding]) -> None:
    if _matches_any(path, CHARGE_SEAMS):
        return
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("spend", "charge")
        ):
            findings.append(
                Finding(
                    "PL001",
                    path,
                    node.lineno,
                    f".{node.func.attr}() called outside the sanctioned charge "
                    f"sites ({', '.join(CHARGE_SEAMS)}) — budget spends must "
                    "flow through the accountant/ledger seam",
                )
            )


# -- PL002: randomness seam ------------------------------------------------------------


def _check_rng_seam(tree: ast.AST, path: str, findings: list[Finding]) -> None:
    if _matches_any(path, RNG_SEAMS):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == "random":
                    findings.append(
                        Finding(
                            "PL002",
                            path,
                            node.lineno,
                            "stdlib random imported — draw through a seeded "
                            "np.random.Generator instead",
                        )
                    )
                if alias.name.startswith("numpy.random"):
                    findings.append(
                        Finding(
                            "PL002",
                            path,
                            node.lineno,
                            "numpy.random imported wholesale — import "
                            "default_rng/Generator or take a Generator argument",
                        )
                    )
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            if node.module == "random" or node.module.startswith("random."):
                findings.append(
                    Finding(
                        "PL002",
                        path,
                        node.lineno,
                        "stdlib random imported — draw through a seeded "
                        "np.random.Generator instead",
                    )
                )
            elif node.module in ("numpy.random",):
                for alias in node.names:
                    if alias.name not in RNG_SEED_PLUMBING:
                        findings.append(
                            Finding(
                                "PL002",
                                path,
                                node.lineno,
                                f"numpy.random.{alias.name} imported — only seed "
                                f"plumbing ({', '.join(sorted(RNG_SEED_PLUMBING))}) "
                                "may be named; draws go through a Generator",
                            )
                        )
        elif isinstance(node, ast.Attribute):
            # np.random.X / numpy.random.X with X outside the seed plumbing:
            # a module-level draw (np.random.normal, np.random.seed, ...)
            dotted = _dotted(node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if (
                len(parts) >= 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in RNG_SEED_PLUMBING
            ):
                findings.append(
                    Finding(
                        "PL002",
                        path,
                        node.lineno,
                        f"{'.'.join(parts[:3])} used — module-level numpy "
                        "randomness is unseeded global state; draw through a "
                        "passed-in np.random.Generator",
                    )
                )


# -- PL003: lock ordering --------------------------------------------------------------


def _lock_kind(item: ast.withitem) -> tuple[str, str] | None:
    """Classify a with-item: ("leaf"|"lock", description) or None."""
    expr = item.context_expr
    # LockStripes.lock_for(...) — a stripe lock, always a leaf
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "lock_for"
    ):
        return ("leaf", _dotted(expr.func) or "lock_for(...)")
    name = None
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    if name is None:
        return None
    if name in LEAF_LOCK_NAMES:
        return ("leaf", name)
    if "lock" in name.lower():
        return ("lock", name)
    return None


def _check_lock_order(tree: ast.AST, path: str, findings: list[Finding]) -> None:
    def visit(node: ast.AST, held_leaf: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            # a nested def is not executed under the outer with; skip it and
            # restart analysis inside it with no locks held
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                visit(child, None)
                continue
            if isinstance(child, (ast.With, ast.AsyncWith)):
                leaf_here = held_leaf
                for item in child.items:
                    kind = _lock_kind(item)
                    if kind is None:
                        continue
                    if held_leaf is not None:
                        findings.append(
                            Finding(
                                "PL003",
                                path,
                                child.lineno,
                                f"{kind[1]} acquired while leaf lock "
                                f"{held_leaf} is held — leaf locks must be "
                                "innermost (deadlock risk under contention)",
                            )
                        )
                    if kind[0] == "leaf":
                        leaf_here = kind[1]
                visit(child, leaf_here)
                continue
            visit(child, held_leaf)

    visit(tree, None)


# -- PL004 / PL005: layering -----------------------------------------------------------


def _imported_repro_modules(tree: ast.AST, parts: list[str]):
    """Yield ``(top_level_target, lineno)`` for every repro-internal import."""
    pkg_parts = parts[:-1]  # package path of the module being linted
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bits = alias.name.split(".")
                if bits[0] == "repro" and len(bits) > 1:
                    yield bits[1], node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                if node.module:
                    bits = node.module.split(".")
                    if bits[0] == "repro":
                        if len(bits) > 1:
                            yield bits[1], node.lineno
                        else:
                            for alias in node.names:
                                yield alias.name, node.lineno
            else:
                # resolve `from ..x import y` against the file's package path
                base = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                if node.level - 1 > len(pkg_parts):
                    continue
                if node.module:
                    target = base + node.module.split(".")
                else:
                    target = None  # `from .. import x` — targets are the names
                if target is not None:
                    if len(target) > 0:
                        yield target[0], node.lineno
                elif not base:
                    for alias in node.names:
                        yield alias.name, node.lineno


def _check_layering(tree: ast.AST, path: str, findings: list[Finding]) -> None:
    parts = _module_parts(path)
    if not parts:
        return
    layer = parts[0] if len(parts) > 1 else None  # None for repro/x.py top-levels
    if layer == "net":
        for target, lineno in _imported_repro_modules(tree, parts):
            if target not in NET_ALLOWED_TARGETS:
                findings.append(
                    Finding(
                        "PL004",
                        path,
                        lineno,
                        f"repro.net imports repro.{target} — the HTTP front "
                        "end may only import repro.net / repro.api / "
                        "repro.obs; everything it serves flows through "
                        "BlowfishService.handle",
                    )
                )
        return
    if layer is None or layer not in API_FORBIDDEN_LAYERS:
        return
    for target, lineno in _imported_repro_modules(tree, parts):
        if target == "api":
            findings.append(
                Finding(
                    "PL004",
                    path,
                    lineno,
                    f"repro.{layer} imports repro.api — the algebra layers "
                    "must not depend on the serving tier",
                )
            )
        elif layer == "core" and target not in ("core", "obs"):
            findings.append(
                Finding(
                    "PL004",
                    path,
                    lineno,
                    f"repro.core imports repro.{target} — core may only "
                    "import repro.core / repro.obs",
                )
            )
    if layer == "obs":
        for node in ast.walk(tree):
            modules = []
            if isinstance(node, ast.Import):
                modules = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                modules = [node.module]
            for mod in modules:
                root = mod.split(".")[0]
                if root in ("numpy", "np", "networkx", "scipy", "pandas"):
                    findings.append(
                        Finding(
                            "PL005",
                            path,
                            node.lineno,
                            f"repro.obs imports {root} — obs is the stdlib-only "
                            "base of the stack",
                        )
                    )
                elif root == "repro" and not mod.startswith("repro.obs"):
                    findings.append(
                        Finding(
                            "PL005",
                            path,
                            node.lineno,
                            f"repro.obs imports {mod} — obs must not depend on "
                            "the rest of the package",
                        )
                    )


# -- driver ----------------------------------------------------------------------------

RULES = (
    _check_charge_seam,
    _check_rng_seam,
    _check_lock_order,
    _check_layering,
)


def lint_file(path: str) -> list[Finding]:
    """Lint one python file; unparseable files yield a PL000-style crash."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    findings: list[Finding] = []
    for rule in RULES:
        rule(tree, path, findings)
    return findings


def lint_paths(paths) -> list[Finding]:
    """Lint files and directory trees; returns findings sorted by location."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            files.append(path)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="privacy-flow lint (budget/rng/lock/layering seams)"
    )
    parser.add_argument("paths", nargs="+", help="python files or directories")
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths)
    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        print(f"privacy lint: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
