"""Spatial range counting on the twitter grid: the quadtree baseline
(Cormode et al. [5], cited in Section 7.2) vs the partitioned-secrets
free release.

Claims checked: the quadtree with constrained inference beats its raw
variant; under the singleton-partition policy (the paper's
partition|120000) rectangle counts are exact.
"""

import numpy as np
import pytest
from conftest import record

from repro import Partition, Policy
from repro.core.rng import ensure_rng, spawn
from repro.datasets import twitter_dataset
from repro.experiments.results import ResultTable
from repro.mechanisms import QuadtreeMechanism, ReleasedGrid


def _random_rectangles(rng, n, n_rows, n_cols):
    r = np.sort(rng.integers(0, n_rows, size=(n, 2)), axis=1)
    c = np.sort(rng.integers(0, n_cols, size=(n, 2)), axis=1)
    return np.column_stack([r[:, 0], r[:, 1], c[:, 0], c[:, 1]])


def _run(bench_scale):
    db = twitter_dataset(bench_scale.twitter_n, rng=bench_scale.seed)
    n_rows, n_cols = db.domain.shape
    rng = ensure_rng(bench_scale.seed)
    rects = _random_rectangles(
        rng, min(bench_scale.n_range_queries, 1000), n_rows, n_cols
    )
    grid = np.zeros((n_rows, n_cols))
    np.add.at(grid, (db.indices // n_cols, db.indices % n_cols), 1.0)
    truth = ReleasedGrid(grid).rectangles(rects)

    table = ResultTable("Spatial quadtree on twitter", y_label="rectangle MSE")
    dp = Policy.differential_privacy(db.domain)
    for eps in bench_scale.epsilons:
        for label, consistent in (
            ("quadtree/inference", True),
            ("quadtree/raw", False),
        ):
            mech = QuadtreeMechanism(dp, eps, consistent=consistent)
            errs = []
            for trial_rng in spawn(rng, max(3, bench_scale.trials // 2)):
                rel = mech.release(db, rng=trial_rng)
                errs.append(float(np.mean((rel.rectangles(rects) - truth) ** 2)))
            errs = np.asarray(errs)
            table.add(
                label, eps, errs.mean(), np.percentile(errs, 25), np.percentile(errs, 75)
            )
    # the free release under singleton-partition secrets (zero sensitivity)
    free = QuadtreeMechanism(Policy.partitioned(Partition.singletons(db.domain)), 1.0)
    rel = free.release(db, rng=0)
    err = float(np.mean((rel.rectangles(rects) - truth) ** 2))
    for eps in bench_scale.epsilons:
        table.add("partition|120000", eps, err, err, err)
    return table


def test_spatial_quadtree(benchmark, bench_scale):
    table = benchmark.pedantic(lambda: _run(bench_scale), rounds=1, iterations=1)
    record(table, "spatial_quadtree")

    for eps in bench_scale.epsilons:
        assert table.value("quadtree/inference", eps) <= table.value(
            "quadtree/raw", eps
        )
        assert table.value("partition|120000", eps) == pytest.approx(0.0, abs=1e-12)
