"""Figure 2(a): the Ordered Hierarchical tree structure (theta = 4).

Figure 2(a) is a structural diagram, so this benchmark regenerates the
structure programmatically (S-node chain, per-segment H trees, budget
split) and times a full OH release at the Figure 2(b) scale.
"""

import numpy as np

from repro import Database, Domain, Policy
from repro.datasets import adult_capital_loss_dataset
from repro.mechanisms import OrderedHierarchicalMechanism


def test_fig2a_structure_theta4():
    domain = Domain.integers("v", 16)
    mech = OrderedHierarchicalMechanism(
        Policy.distance_threshold(domain, 4), 1.0, fanout=4
    )
    desc = mech.describe()
    print(f"\nOH structure for |T|=16, theta=4, fanout=4: {desc}")
    assert desc["n_s_nodes"] == 4
    assert desc["s_node_boundaries"] == [3, 7, 11, 15]
    assert desc["n_h_trees"] == 4
    assert desc["h_tree_height"] == 1
    # the chain links s_i to s_{i-1}: boundaries strictly increase by theta
    assert np.all(np.diff(desc["s_node_boundaries"]) == 4)


def test_fig2a_release_timing(benchmark, bench_scale):
    db = adult_capital_loss_dataset(bench_scale.adult_n, rng=bench_scale.seed)
    mech = OrderedHierarchicalMechanism(
        Policy.distance_threshold(db.domain, 100), 0.5, fanout=16
    )
    released = benchmark(lambda: mech.release(db, rng=0))
    assert released.range(0, db.domain.size - 1) > 0
