"""Figure 3 / Examples 8.1-8.3: the policy graph worked example.

Regenerates the paper's 2x2x3 construction exactly — sparsity of the
A1xA2 marginal w.r.t. the complete secret graph, the policy graph with a
complete 4-vertex query sub-digraph plus the lone (v+, v-) edge, alpha=4,
xi=1, and S(h, P) = 8 — and validates the sensitivity against exhaustive
neighbor enumeration on a smaller sibling instance.
"""

from conftest import record

from repro import Attribute, Database, Domain, Policy
from repro.constraints import MarginalConstraintSet, PolicyGraph, is_sparse
from repro.constraints.marginals import marginal_queries
from repro.core.graphs import FullDomainGraph
from repro.core.sensitivity import brute_force_sensitivity
from repro.experiments.results import ResultTable


def _figure3_quantities():
    domain = Domain(
        [
            Attribute("A1", ["a1", "a2"]),
            Attribute("A2", ["b1", "b2"]),
            Attribute("A3", ["c1", "c2", "c3"]),
        ]
    )
    queries = marginal_queries(domain, ["A1", "A2"])
    sparse = is_sparse(queries, FullDomainGraph(domain))
    pg = PolicyGraph(FullDomainGraph(domain), queries)
    return sparse, pg.alpha(), pg.xi(), pg.sensitivity_bound()


def test_fig3_policy_graph(benchmark):
    sparse, alpha, xi, bound = benchmark.pedantic(
        _figure3_quantities, rounds=1, iterations=1
    )
    table = ResultTable("Figure 3 policy graph", x_label="quantity", y_label="value")
    table.add("alpha", 0, alpha, alpha, alpha)
    table.add("xi", 1, xi, xi, xi)
    table.add("S(h,P)", 2, bound, bound, bound)
    record(table, "fig3_policy_graph")

    assert sparse
    assert alpha == 4
    assert xi == 1
    assert bound == 8.0


def test_fig3_brute_force_validation():
    """2x2 sibling of Example 8.3, small enough for exact enumeration."""
    domain = Domain([Attribute("A1", ["a1", "a2"]), Attribute("A2", ["b1", "b2"])])
    db = Database.from_values(domain, [("a1", "b1"), ("a1", "b2"), ("a2", "b1")])
    cs = MarginalConstraintSet(domain, [["A1"]], db)
    policy = Policy.full_domain(domain, cs)
    exact = brute_force_sensitivity(lambda d: d.histogram(), policy, 3)
    pg = PolicyGraph(policy.graph, [c.query for c in cs])
    assert exact == pg.sensitivity_bound() == 4.0
