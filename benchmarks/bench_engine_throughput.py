"""Engine batch-answering throughput: queries/sec at |T| in {1e3, 1e5}.

Not a paper figure — the serving-layer record the ROADMAP asks for.  The
engine answers a 10k-query random range workload from one raw OH synopsis
in a single vectorized prefix pass; the baseline walks the canonical tree
decomposition per query (the pre-engine hot path).  Asserted claims:

* answers are bitwise identical to the per-query path (checked inside the
  probe), and
* at |T| = 1e5 the engine is >= 50x faster than per-query answering.
"""

from conftest import record

from repro.experiments.results import ResultTable

SIZES = ((1_000, 256), (100_000, 4_096))  # (|T|, theta)
N_QUERIES = 10_000


def test_engine_throughput(benchmark, engine_throughput_probe):
    results = benchmark.pedantic(
        lambda: [
            engine_throughput_probe(size, N_QUERIES, theta)
            for size, theta in SIZES
        ],
        rounds=1,
        iterations=1,
    )

    table = ResultTable(
        "Engine throughput (10k range queries, raw OH)",
        x_label="|T|",
        y_label="queries/sec",
    )
    for row in results:
        table.add("engine", row["size"], row["engine_qps"], row["engine_qps"], row["engine_qps"])
        table.add("per-query loop", row["size"], row["loop_qps"], row["loop_qps"], row["loop_qps"])
    record(table, "engine_throughput")

    by_size = {row["size"]: row for row in results}
    for row in results:
        print(
            f"|T|={row['size']}: engine {row['engine_qps']:,.0f} q/s, "
            f"loop {row['loop_qps']:,.0f} q/s, x{row['speedup']:.0f}"
        )
    # the engine must never be slower, and at serving scale the vectorized
    # pass has to beat per-query tree walks by >= 50x
    assert all(row["speedup"] > 1 for row in results)
    assert by_size[100_000]["speedup"] >= 50
