"""Ablation: uniform vs geometric level budgeting for the hierarchical
baseline.  The paper uses uniform budgeting and cites geometric (Cormode
et al. [5]) as the alternative; this measures the difference on the
Figure 2(b) workload at theta = full domain."""

import numpy as np
from conftest import record

from repro import Policy
from repro.analysis import random_range_queries, true_range_answers
from repro.core.rng import ensure_rng, spawn
from repro.datasets import adult_capital_loss_dataset
from repro.experiments.results import ResultTable
from repro.mechanisms import HierarchicalMechanism


def _run(bench_scale):
    db = adult_capital_loss_dataset(bench_scale.adult_n, rng=bench_scale.seed)
    rng = ensure_rng(bench_scale.seed)
    los, his = random_range_queries(db.domain.size, bench_scale.n_range_queries, rng)
    truth = true_range_answers(db.cumulative_histogram(), los, his)
    table = ResultTable(
        "Hierarchical budgeting ablation (uniform vs geometric)",
        y_label="range query MSE",
    )
    for budget in ("uniform", "geometric"):
        for eps in bench_scale.epsilons:
            mech = HierarchicalMechanism(
                Policy.differential_privacy(db.domain), eps, fanout=16, budget=budget
            )
            errs = []
            for trial_rng in spawn(rng, bench_scale.trials):
                rel = mech.release(db, rng=trial_rng)
                errs.append(float(np.mean((rel.ranges(los, his) - truth) ** 2)))
            errs = np.asarray(errs)
            table.add(
                budget, eps, errs.mean(), np.percentile(errs, 25), np.percentile(errs, 75)
            )
    return table


def test_ablation_tree_budget(benchmark, bench_scale):
    table = benchmark.pedantic(lambda: _run(bench_scale), rounds=1, iterations=1)
    record(table, "ablation_tree_budget")

    # with constrained inference the two allocations are within a small
    # factor of each other at every epsilon — the paper's uniform choice is
    # not load-bearing
    for eps in bench_scale.epsilons:
        uni = table.value("uniform", eps)
        geo = table.value("geometric", eps)
        assert 0.2 < uni / geo < 5.0
