"""Ablation: per-iteration budget share between q_size and q_sum in
private k-means (DESIGN.md Section 5).  The paper does not prescribe a
split; this maps the sensitivity of the result to that choice."""

from conftest import record

from repro import Policy
from repro.datasets import gaussian_clusters_dataset
from repro.experiments import kmeans_budget_ablation


def test_ablation_kmeans_budget(benchmark, bench_scale):
    db = gaussian_clusters_dataset(rng=bench_scale.seed)
    policy = Policy.distance_threshold(db.domain, 0.5)
    table = benchmark.pedantic(
        lambda: kmeans_budget_ablation(db, policy, epsilon=0.5, scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    record(table, "ablation_kmeans_budget")

    ratios = {p.x: p.mean for p in table.points}
    assert len(ratios) == 5
    # every split should stay within a sane band of the best one
    assert max(ratios.values()) <= min(ratios.values()) * 10
