"""Ablation: H-tree fan-out sweep for the OH mechanism (DESIGN.md
Section 5).  The paper fixes f=16; this shows the error surface around it."""

from conftest import record

from repro.datasets import adult_capital_loss_dataset
from repro.experiments import fanout_ablation


def test_ablation_fanout(benchmark, bench_scale):
    db = adult_capital_loss_dataset(bench_scale.adult_n, rng=bench_scale.seed)
    table = benchmark.pedantic(
        lambda: fanout_ablation(db, 100, epsilon=0.5, scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    record(table, "ablation_fanout")

    errs = {int(p.x): p.mean for p in table.points}
    assert set(errs) == {2, 4, 8, 16, 32}
    # the paper's f=16 choice should be within a small factor of the best
    assert errs[16] <= min(errs.values()) * 2.5
