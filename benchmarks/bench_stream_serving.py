"""Continual releases: hierarchical interval counter vs naive per-tick.

The twitter latitude dataset replayed as an append-only stream over
``TICKS`` ticks.  Both contenders spend the *same total epsilon* across
the horizon and answer the same seeded range queries against every tick's
prefix:

* **hierarchical** — :class:`repro.stream.HierarchicalIntervalCounter`:
  one dyadic-interval node release per tick at ``total/levels`` each;
  per-level releases cover disjoint arrivals (parallel composition), so
  the honest ledger total stays at ``per_node * levels <= total`` while
  every individual release is ``horizon/levels`` times better funded than
  a naive tick's worth.
* **naive** — a full prefix re-release every tick
  (:class:`repro.stream.SlidingWindowReleaser` with no window) at
  ``total/horizon`` each: the overlapping prefixes compose sequentially,
  so equal total epsilon means each release gets only a tick's sliver.

Claims asserted (after the CSV is written):

* measured amortized MSE (mean over ticks of per-tick mean squared range
  error): the hierarchical counter beats naive per-tick re-release at
  equal total epsilon;
* both ledgers honestly account to at most the shared total;
* the counter's answers are bitwise deterministic in the seed.

Writes ``benchmarks/results/stream_serving.csv`` (per-tick MSE series for
both contenders, plus the amortized means).
"""

from __future__ import annotations

import numpy as np

from conftest import record

from repro import Policy, PolicyEngine
from repro.analysis.error import random_range_queries, true_range_answers
from repro.core.composition import PrivacyAccountant
from repro.experiments.results import ResultTable
from repro.stream import (
    HierarchicalIntervalCounter,
    SlidingWindowReleaser,
    StreamBudget,
    amortized_ledger_total,
    twitter_replay,
)

TICKS = 16
N_TUPLES = 40_000
N_QUERIES = 400
TOTAL_EPSILON = 2.0
SEED = 20140623


def _replayed(counter_cls_budget, seed: int):
    """Replay the stream, advancing one releaser; per-tick answers + ledger."""
    stream, batches = twitter_replay(ticks=TICKS, n=N_TUPLES, rng=SEED)
    engine = PolicyEngine(Policy.line(stream.domain), 1.0)
    budget = StreamBudget(TOTAL_EPSILON, horizon=TICKS)
    acct = PrivacyAccountant(engine.policy)
    releaser = counter_cls_budget(engine, budget)
    rng = np.random.default_rng(seed)
    qrng = np.random.default_rng(SEED)
    los, his = random_range_queries(stream.domain.size, N_QUERIES, qrng)
    per_tick = []
    for batch in batches:
        stream.append(batch)
        stream.advance()
        if isinstance(releaser, HierarchicalIntervalCounter):
            releaser.advance(stream, rng=rng, accountant=acct)
            answerer = releaser.answerer()
        else:
            answerer = releaser.refresh(stream, rng=rng, accountant=acct)
        per_tick.append(np.asarray(answerer.ranges(los, his), dtype=float))
    truths = []
    for t in range(TICKS):
        db = stream.snapshot(t)
        truths.append(true_range_answers(db.cumulative_histogram(), los, his))
    mses = [float(np.mean((got - want) ** 2)) for got, want in zip(per_tick, truths)]
    ledger = amortized_ledger_total(acct.store.entries(acct.key))
    return per_tick, mses, ledger


def test_stream_serving(benchmark):
    def run():
        hier_answers, hier_mses, hier_ledger = _replayed(
            HierarchicalIntervalCounter, seed=1
        )
        naive_answers, naive_mses, naive_ledger = _replayed(
            SlidingWindowReleaser, seed=2
        )
        return hier_answers, hier_mses, hier_ledger, naive_mses, naive_ledger

    hier_answers, hier_mses, hier_ledger, naive_mses, naive_ledger = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    table = ResultTable("stream_serving", x_label="tick", y_label="range MSE")
    for t, (h, n) in enumerate(zip(hier_mses, naive_mses)):
        table.add("hierarchical", t, h, h, h)
        table.add("naive-per-tick", t, n, n, n)
    hier_amortized = float(np.mean(hier_mses))
    naive_amortized = float(np.mean(naive_mses))
    table.add("hierarchical", -1, hier_amortized, hier_amortized, hier_amortized)
    table.add("naive-per-tick", -1, naive_amortized, naive_amortized, naive_amortized)
    record(table, "stream_serving")
    print(
        f"amortized MSE over {TICKS} ticks at total epsilon {TOTAL_EPSILON:g}: "
        f"hierarchical {hier_amortized:.1f} vs naive {naive_amortized:.1f} "
        f"({naive_amortized / hier_amortized:.1f}x); ledger totals "
        f"{hier_ledger:g} / {naive_ledger:g}"
    )

    # the amortization win: same total epsilon, materially lower error
    assert hier_amortized < naive_amortized
    # both account honestly to the shared total
    assert hier_ledger <= TOTAL_EPSILON + 1e-9
    assert naive_ledger <= TOTAL_EPSILON + 1e-9
    # bitwise determinism: the replay is a pure function of the seed
    again, _, _ = _replayed(HierarchicalIntervalCounter, seed=1)
    for a, b in zip(hier_answers, again):
        np.testing.assert_array_equal(a, b)
