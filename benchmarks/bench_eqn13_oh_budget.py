"""Eqns (13)-(15): the OH error model and its optimal budget split.

Checks that (1) the Eqn (14) prediction tracks the measured raw-OH error
within a small constant factor across thetas, and (2) the Eqn (15) split is
at least as good as every other split on a sweep — empirically, not just
by calculus.
"""

import numpy as np
from conftest import record

from repro import Database, Domain, Policy
from repro.analysis import (
    oh_expected_range_error,
    optimal_budget_split,
    random_range_queries,
    true_range_answers,
)
from repro.core.rng import ensure_rng
from repro.experiments.results import ResultTable
from repro.mechanisms import OrderedHierarchicalMechanism


def _measure(db, theta, eps, fanout, split, trials, los, his, truth):
    mech = OrderedHierarchicalMechanism(
        Policy.distance_threshold(db.domain, theta),
        eps,
        fanout=fanout,
        budget_split=split,
        consistent=False,
    )
    errs = []
    for t in range(trials):
        rel = mech.release(db, rng=t)
        errs.append(float(np.mean((rel.ranges(los, his) - truth) ** 2)))
    return float(np.mean(errs))


def _run(bench_scale):
    rng = ensure_rng(bench_scale.seed)
    size, eps, fanout = 1024, 0.5, 16
    domain = Domain.integers("v", size)
    db = Database.from_indices(domain, rng.integers(0, size, 8000))
    los, his = random_range_queries(size, 400, rng)
    truth = true_range_answers(db.cumulative_histogram(), los, his)
    trials = max(6, bench_scale.trials)

    table = ResultTable(
        "Eqn (13)-(15): predicted vs measured OH error (eps=0.5)",
        x_label="theta",
        y_label="range query MSE",
    )
    for theta in (16, 64, 256):
        eps_s, eps_h = optimal_budget_split(size, theta, fanout, eps)
        predicted = oh_expected_range_error(size, theta, fanout, eps_s, eps_h)
        measured = _measure(db, theta, eps, fanout, "optimal", trials, los, his, truth)
        table.add("predicted", theta, predicted, predicted, predicted)
        table.add("measured", theta, measured, measured, measured)
        # a grid of alternative splits: none should beat optimal by much
        for frac in (0.1, 0.3, 0.5, 0.7, 0.9):
            other = _measure(db, theta, eps, fanout, frac * eps, trials, los, his, truth)
            table.add(f"split={frac:g}", theta, other, other, other)
    return table


def test_eqn13_oh_budget(benchmark, bench_scale):
    table = benchmark.pedantic(lambda: _run(bench_scale), rounds=1, iterations=1)
    record(table, "eqn13_oh_budget")

    for theta in (16, 64, 256):
        predicted = table.value("predicted", theta)
        measured = table.value("measured", theta)
        # the analytic model is an average-case estimate: same magnitude
        assert predicted / 4 <= measured <= predicted * 4, theta
        # the optimal split is never beaten by more than sampling noise
        alternatives = [
            table.value(f"split={f:g}", theta) for f in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert measured <= min(alternatives) * 1.6, theta
