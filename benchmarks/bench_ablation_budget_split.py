"""Ablation: Eqn (15) optimal budget split vs the uniform eps/2 split on
the Figure 2(b) workload (DESIGN.md Section 5)."""

from conftest import record

from repro.datasets import adult_capital_loss_dataset
from repro.experiments import budget_split_ablation


def test_ablation_budget_split(benchmark, bench_scale):
    db = adult_capital_loss_dataset(bench_scale.adult_n, rng=bench_scale.seed)
    table = benchmark.pedantic(
        lambda: budget_split_ablation(db, 100, bench_scale), rounds=1, iterations=1
    )
    record(table, "ablation_budget_split")

    # the optimal split should not lose to uniform beyond noise, anywhere
    for eps in bench_scale.epsilons:
        assert table.value("optimal", eps) <= table.value("uniform", eps) * 1.5
