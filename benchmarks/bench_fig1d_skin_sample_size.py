"""Figure 1(d): Laplace/Blowfish(theta=128) objective ratio vs sample size.

Paper's claims checked: the improvement factor is larger on smaller samples
(skin01 > full) and shrinks as epsilon grows — the gains concentrate where
noise dominates signal.
"""

from conftest import record

from repro.experiments.figure1 import figure_1d


def test_fig1d_skin_sample_size(benchmark, bench_scale):
    table = benchmark.pedantic(lambda: figure_1d(bench_scale), rounds=1, iterations=1)
    record(table, "fig1d_skin_sample_size")

    eps = min(table.xs())
    # Blowfish always at least as good as Laplace (ratio >= ~1) ...
    for p in table.points:
        assert p.mean > 0.8
    # ... and the small sample benefits at least as much as the full data
    assert table.value("1%sample", eps) >= 0.8 * table.value("full", eps)
