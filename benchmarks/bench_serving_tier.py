"""The sharded serving tier: throughput up, answers bit-identical.

A mixed request stream (range batches and count-mask batches, every
request seeded, each distinct query asked ``REPEATS`` times — two thirds
sessionless, one third under per-client sessions whose spends land in a
shared SQLite budget ledger) served four ways:

* **baseline** — one synchronous :class:`BlowfishService`, requests
  handled one by one (the pre-tier deployment);
* **1/2/4 workers** — :class:`ShardedServiceRunner`: session-sharded
  worker processes over one SQLite ledger file, each worker fronted by
  the batching/coalescing :class:`AsyncBlowfishService`.

Claims asserted:

* answers are bitwise identical across the baseline and every worker
  count (seeded requests are deterministic and sharding preserves
  per-session order);
* the shared ledger records exactly one spend per client session — no
  lost spends, no double charges, at any worker count;
* 4-worker throughput is at least 2.5x the baseline.  On a single-core
  CI runner that win is *coalescing*, not parallelism: the baseline pays
  a full release for every sessionless repeat, while in-flight duplicates
  inside each worker share one execution (the timing harness excludes
  request construction and process startup via a prepare/go handshake).

Writes ``benchmarks/results/serving_tier.csv`` (req/s, p50/p99 ms per
deployment).
"""

from __future__ import annotations

import functools
import time

import numpy as np

from conftest import record

from repro import Database, Domain, Policy
from repro.api import BlowfishService, ShardedServiceRunner, SQLiteLedgerStore
from repro.experiments.results import ResultTable

SIZE = 4_000
N_TUPLES = 8_000
QUERIES_PER_BATCH = 400
N_DISTINCT = 12  #: distinct queries; ids 0..7 sessionless, 8..11 sessioned
N_SESSIONED = 4
REPEATS = 6
THETA = 2
EPSILON = 0.5
SEED = 20140623
WORKER_COUNTS = (1, 2, 4)
MIN_SPEEDUP = 2.5

N_REQUESTS = N_DISTINCT * REPEATS


def _domain():
    return Domain.integers("v", SIZE)


def _database():
    rng = np.random.default_rng(SEED)
    return Database.from_indices(_domain(), rng.integers(0, SIZE, size=N_TUPLES))


def _bench_service(ledger_path):
    # module-level so worker processes can rebuild it (runs in the worker;
    # the SQLite connection is opened there, never pickled)
    ledger = None if ledger_path is None else SQLiteLedgerStore(ledger_path)
    service = BlowfishService(ledger_store=ledger)
    service.register_dataset("data", _database())
    # warm the engine pool (deployment startup cost, identical for the
    # baseline and every worker) so the timed window measures serving
    service.pool.get(Policy.distance_threshold(_domain(), THETA), EPSILON)
    return service


def _bench_session(i):
    # affinity key: repeats of one query must land on one worker — for
    # sessioned queries that is their session (per-session order), for
    # sessionless ones it is what lets in-flight duplicates coalesce
    query = i // REPEATS
    if query < N_DISTINCT - N_SESSIONED:
        return f"anon-{query}"
    return f"client-{query}"


def _bench_request(i):
    """Request ``i``: query ``i // REPEATS`` asked for the ``i % REPEATS``-th
    time.  Sessionless repeats are the coalescing fodder (the baseline
    re-releases for each); sessioned repeats are free via the release
    cache in every deployment."""
    domain = _domain()
    query = i // REPEATS
    rng = np.random.default_rng(SEED + query)
    request = {
        "policy": Policy.distance_threshold(domain, THETA).to_spec(),
        "epsilon": EPSILON,
        "dataset": {"name": "data"},
        "seed": SEED + query,
    }
    if query % 2 == 0:
        los = rng.integers(0, SIZE, size=QUERIES_PER_BATCH)
        his = rng.integers(0, SIZE, size=QUERIES_PER_BATCH)
        los, his = np.minimum(los, his), np.maximum(los, his)
        request["queries"] = {
            "kind": "range_batch",
            "los": los.tolist(),
            "his": his.tolist(),
        }
    else:
        starts = rng.integers(0, SIZE - 400, size=QUERIES_PER_BATCH // 4)
        widths = rng.integers(40, 400, size=QUERIES_PER_BATCH // 4)
        request["queries"] = [
            {"kind": "count", "support": list(range(int(s), int(s + w)))}
            for s, w in zip(starts, widths)
        ]
    if query >= N_DISTINCT - N_SESSIONED:
        request["session"] = _bench_session(i)
        request["budget"] = 4 * EPSILON
    return request


def _baseline():
    """One sync service, one request at a time — with per-request latency."""
    service = _bench_service(None)
    requests = [_bench_request(i) for i in range(N_REQUESTS)]
    start = time.perf_counter()
    responses, latencies = [], []
    for request in requests:
        t0 = time.perf_counter()
        responses.append(service.handle(request))
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    return responses, elapsed, latencies


def _quantile(latencies, q):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def test_sharded_tier_throughput_and_identity(tmp_path):
    base_responses, base_elapsed, base_latencies = _baseline()
    assert all(r["ok"] for r in base_responses), base_responses
    base_rps = N_REQUESTS / base_elapsed
    base_answers = [r["answers"] for r in base_responses]

    table = ResultTable(
        f"Sharded serving tier ({N_REQUESTS} mixed requests, {REPEATS}x "
        f"repeats, |domain|={SIZE}, theta={THETA})",
        x_label="worker processes (0 = sync baseline)",
        y_label="value",
    )
    table.add("req_per_s", 0, base_rps, base_rps, base_rps)
    table.add("p50_ms", 0, _quantile(base_latencies, 0.5) * 1e3, 0, 0)
    table.add("p99_ms", 0, _quantile(base_latencies, 0.99) * 1e3, 0, 0)

    rps_by_workers = {}
    for workers in WORKER_COUNTS:
        ledger_path = str(tmp_path / f"ledger-{workers}.sqlite")
        runner = ShardedServiceRunner(
            functools.partial(_bench_service, ledger_path), workers=workers
        )
        result = runner.run(N_REQUESTS, _bench_request, shard_key=_bench_session)
        assert all(r["ok"] for r in result.responses), result.responses

        # bitwise identity with the baseline, at every worker count
        assert [r["answers"] for r in result.responses] == base_answers, (
            f"{workers}-worker answers diverged from the sync baseline"
        )
        # exact budget truth in the shared ledger: one spend per client
        ledger = SQLiteLedgerStore(ledger_path)
        assert len(ledger.keys()) == N_SESSIONED
        for key in ledger.keys():
            assert len(ledger.entries(key)) == 1
            assert abs(ledger.total(key) - EPSILON) < 1e-12

        rps = result.requests_per_second
        rps_by_workers[workers] = rps
        table.add("req_per_s", workers, rps, rps, rps)
        table.add("p50_ms", workers, result.latency_quantile(0.5) * 1e3, 0, 0)
        table.add("p99_ms", workers, result.latency_quantile(0.99) * 1e3, 0, 0)
        stats = result.tier_stats
        print(
            f"{workers} worker(s): {rps:,.0f} req/s "
            f"(baseline {base_rps:,.0f}), p50 "
            f"{result.latency_quantile(0.5) * 1e3:.1f}ms, p99 "
            f"{result.latency_quantile(0.99) * 1e3:.1f}ms; "
            f"{stats['coalesced']}/{stats['received']} coalesced"
        )

    record(table, "serving_tier")

    speedup = rps_by_workers[4] / base_rps
    print(f"4-worker speedup over sync baseline: {speedup:.2f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"4-worker tier is {speedup:.2f}x the sync baseline "
        f"({rps_by_workers[4]:,.0f} vs {base_rps:,.0f} req/s); need "
        f">= {MIN_SPEEDUP}x"
    )
