"""Figure 1(f): twitter k-means under partitioned secrets G^P.

Paper's claims checked: every partition policy's objective sits at or below
the Laplace mechanism's, and partition|120000 (the original grid — secrets
confined to single cells) clusters exactly (ratio 1).
"""

from conftest import record

from repro.experiments.figure1 import PARTITION_BLOCKS, figure_1f


def test_fig1f_partition_policy(benchmark, bench_scale):
    table = benchmark.pedantic(lambda: figure_1f(bench_scale), rounds=1, iterations=1)
    record(table, "fig1f_partition_policy")

    eps_lo = min(bench_scale.epsilons)
    lap = table.value("laplace", eps_lo)
    for n_blocks in PARTITION_BLOCKS:
        assert table.value(f"partition|{n_blocks}", eps_lo) <= lap * 1.05
    # the finest partition is exact at every epsilon
    for eps in bench_scale.epsilons:
        assert abs(table.value("partition|120000", eps) - 1.0) < 1e-9
