"""Figure 2(b): range-query MSE vs epsilon on adult capital-loss.

Paper's claims checked: error decreases monotonically in epsilon and, at
fixed epsilon, decreases as theta shrinks from the full domain toward 1,
with orders of magnitude between the endpoints; theta=1 lands in the
ordered mechanism's O(1/eps^2) regime.
"""

from conftest import record

from repro.analysis import ordered_range_error_bound
from repro.experiments.figure2 import figure_2b


def test_fig2b_adult_range(benchmark, bench_scale):
    table = benchmark.pedantic(lambda: figure_2b(bench_scale), rounds=1, iterations=1)
    record(table, "fig2b_adult_range")

    eps_hi = max(bench_scale.epsilons)
    eps_lo = min(bench_scale.epsilons)
    full = table.value("theta=full domain", eps_hi)
    mid = table.value("theta=100", eps_hi)
    one = table.value("theta=1", eps_hi)
    # monotone improvement in theta, orders of magnitude end to end
    assert full > mid > one
    assert full / one > 50
    # theta=1 is the ordered mechanism: at/below the Theorem 7.1 bound
    assert one <= ordered_range_error_bound(eps_hi) * 1.5
    # more budget -> less error, per series
    for name in table.series_names():
        assert table.value(name, eps_lo) > table.value(name, eps_hi)
