"""Ablation: constrained inference on vs off for the OH mechanism
(DESIGN.md Section 5). The paper applies Hay-style boosting to the ordered
mechanism; this quantifies what it buys on the hybrid tree."""

from conftest import record

from repro.datasets import adult_capital_loss_dataset
from repro.experiments import inference_ablation


def test_ablation_inference(benchmark, bench_scale):
    db = adult_capital_loss_dataset(bench_scale.adult_n, rng=bench_scale.seed)
    table = benchmark.pedantic(
        lambda: inference_ablation(db, 100, bench_scale), rounds=1, iterations=1
    )
    record(table, "ablation_inference")

    for eps in bench_scale.epsilons:
        assert table.value("inference", eps) <= table.value("raw", eps)
