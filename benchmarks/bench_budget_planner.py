"""Adaptive per-release epsilon allocation vs a uniform split, equal total.

The 10k mixed workload of ``bench_planner.py`` (9,000 random ranges + 980
interval counts + 20 linear queries over |T| = 50,000, ``G^{d,2}``), planned
budget-first at a total epsilon of 1.0 two ways:

* **adaptive** — ``PlanBudget(total=1.0)``: the planner splits the total
  across the plan's fresh releases by the cube-root rule (Eqn 15 lifted
  across releases), weighting each release by the query count it serves;
* **uniform** — ``PlanBudget(uniform=1.0 / n_fresh)``: the same total
  spread evenly, one equal share per fresh release (the pre-budget
  behaviour at a scaled-down engine epsilon).

Asserted claims (the ISSUE 5 acceptance bar):

* the adaptive plan's total *predicted* workload MSE is strictly lower;
* its total *measured* workload MSE (averaged over TRIALS fresh release
  draws) is strictly lower too — the 9,980 prefix-served queries get the
  epsilon the 20 tiny linear queries cannot use;
* both plans charge exactly the same 1.0 total epsilon;
* a fixed seed keeps the budgeted path bitwise-deterministic.

Writes ``benchmarks/results/budget_planner.csv``.
"""

from __future__ import annotations

import numpy as np

from conftest import record

from repro import Database, Domain, PlanBudget, Policy, PolicyEngine, Workload
from repro.analysis.error import true_range_answers
from repro.experiments.results import ResultTable
from repro.plan import Executor, QueryGroup

SIZE = 50_000
N_TUPLES = 100_000
N_RANGES = 9_000
N_COUNTS = 980
N_LINEAR = 20
THETA = 2
TOTAL_EPSILON = 1.0
SEED = 20140623
TRIALS = 5


def _setting():
    rng = np.random.default_rng(SEED)
    domain = Domain.integers("v", SIZE)
    db = Database.from_indices(domain, rng.integers(0, SIZE, size=N_TUPLES))
    los = rng.integers(0, SIZE, size=N_RANGES)
    his = rng.integers(0, SIZE, size=N_RANGES)
    los, his = np.minimum(los, his), np.maximum(los, his)
    starts = rng.integers(0, SIZE - 500, size=N_COUNTS)
    widths = rng.integers(50, 500, size=N_COUNTS)
    masks = np.zeros((N_COUNTS, SIZE), dtype=bool)
    for i, (s, w) in enumerate(zip(starts, widths)):
        masks[i, s : s + w] = True
    weights = rng.random((N_LINEAR, N_TUPLES)) / N_TUPLES
    workload = Workload(
        domain,
        [
            QueryGroup.ranges(los, his),
            QueryGroup.counts(masks, name="bands"),
            QueryGroup.linear(weights, name="weighted-means"),
        ],
    )
    truth = {
        "range": true_range_answers(db.cumulative_histogram(), los, his),
        "bands": masks.astype(np.float64) @ db.histogram(),
        "weighted-means": weights @ db.points()[:, 0],
    }
    engine = PolicyEngine(Policy.distance_threshold(domain, THETA), TOTAL_EPSILON)
    return engine, db, workload, truth


def _predicted_total(plan) -> float:
    """Sum over all queries of the model's predicted squared error."""
    return sum(
        s.n_queries * s.predicted_rmse**2
        for s in plan.steps
        if s.predicted_rmse is not None
    )


def _measured_total(engine, plan, db, truth) -> dict[str, float]:
    """Per-group and workload-total measured MSE over TRIALS fresh draws."""
    per_group = {name: [] for name in truth}
    for trial in range(TRIALS):
        result = Executor(engine).run(plan, db, rng=np.random.default_rng((SEED, trial)))
        for name in truth:
            per_group[name].append(
                float(np.mean((result.by_group[name] - truth[name]) ** 2))
            )
    avg = {name: float(np.mean(vals)) for name, vals in per_group.items()}
    n_total = sum(len(t) for t in truth.values())
    avg["total"] = (
        sum(avg[name] * len(truth[name]) for name in truth) / n_total
    )
    return avg


def test_adaptive_allocation_beats_uniform_split_at_equal_total_epsilon():
    engine, db, workload, truth = _setting()

    adaptive_plan = engine.plan(workload, budget=PlanBudget(total=TOTAL_EPSILON))
    n_fresh = sum(1 for s in adaptive_plan.steps if s.epsilon > 0)
    uniform_plan = engine.plan(
        workload, budget=PlanBudget(uniform=TOTAL_EPSILON / n_fresh)
    )
    # equal total epsilon (up to float rounding: the adaptive shares are
    # independently rounded divisions of the total)
    assert abs(adaptive_plan.total_epsilon - TOTAL_EPSILON) < 1e-9
    assert abs(uniform_plan.total_epsilon - TOTAL_EPSILON) < 1e-9

    # determinism: same seed, bitwise-identical budgeted answers
    r1 = Executor(engine).run(adaptive_plan, db, rng=np.random.default_rng(SEED))
    r2 = Executor(engine).run(adaptive_plan, db, rng=np.random.default_rng(SEED))
    assert np.array_equal(r1.answers, r2.answers)

    predicted = {
        "adaptive": _predicted_total(adaptive_plan),
        "uniform": _predicted_total(uniform_plan),
    }
    measured = {
        "adaptive": _measured_total(engine, adaptive_plan, db, truth),
        "uniform": _measured_total(engine, uniform_plan, db, truth),
    }

    table = ResultTable(
        f"Adaptive vs uniform epsilon split at total epsilon {TOTAL_EPSILON:g} "
        f"({N_RANGES + N_COUNTS + N_LINEAR} mixed queries, |T|={SIZE}, theta={THETA})",
        x_label="path (0=uniform, 1=adaptive)",
        y_label="MSE",
    )
    for i, label in enumerate(("uniform", "adaptive")):
        table.add("predicted-total", i, predicted[label], predicted[label], predicted[label])
        for k in ("range", "bands", "weighted-means", "total"):
            v = measured[label][k]
            table.add(f"measured-{k}", i, v, v, v)
        plan = uniform_plan if label == "uniform" else adaptive_plan
        for s in plan.steps:
            if s.epsilon > 0:
                table.add(f"epsilon-{s.group}", i, s.epsilon, s.epsilon, s.epsilon)
    record(table, "budget_planner")

    gain_pred = predicted["uniform"] / predicted["adaptive"]
    gain_meas = measured["uniform"]["total"] / measured["adaptive"]["total"]
    print(
        f"predicted total MSE {predicted['uniform']:.1f} -> "
        f"{predicted['adaptive']:.1f} ({gain_pred:.2f}x); measured "
        f"{measured['uniform']['total']:.1f} -> {measured['adaptive']['total']:.1f} "
        f"({gain_meas:.2f}x) at equal total epsilon {TOTAL_EPSILON:g}"
    )

    # the acceptance bar: strictly lower on both axes at equal total epsilon
    assert predicted["adaptive"] < predicted["uniform"]
    assert measured["adaptive"]["total"] < measured["uniform"]["total"]
    # and materially so: the 9,980 prefix-served queries get almost the whole
    # budget instead of half of it (error scales as 1/eps^2: ~4x)
    assert gain_meas > 2.0
