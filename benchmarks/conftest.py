"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one figure (or analytic claim) of the
paper.  Each benchmark

* runs the experiment once inside ``pytest-benchmark`` (the timing is the
  cost of regenerating that figure at the configured scale),
* writes the measured series to ``benchmarks/results/<name>.csv``,
* prints the series table (visible with ``pytest -s`` or in the benchmark
  summary output), and
* asserts the paper's *qualitative* claims — who wins, roughly by how much,
  where the crossovers fall.

``REPRO_FULL=1`` switches to the paper's full scale (50 trials, 10 epsilon
values, full datasets); the default scale finishes the whole suite in a few
minutes.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import default_scale
from repro.experiments.results import ResultTable

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale():
    """The experiment scale for every benchmark (env-switchable)."""
    return default_scale()


def record(table: ResultTable, name: str) -> ResultTable:
    """Persist and display a result table; returns it for assertions."""
    table.to_csv(RESULTS_DIR / f"{name}.csv")
    print()
    print(table.format_text())
    return table
