"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one figure (or analytic claim) of the
paper.  Each benchmark

* runs the experiment once inside ``pytest-benchmark`` (the timing is the
  cost of regenerating that figure at the configured scale),
* writes the measured series to ``benchmarks/results/<name>.csv``,
* prints the series table (visible with ``pytest -s`` or in the benchmark
  summary output), and
* asserts the paper's *qualitative* claims — who wins, roughly by how much,
  where the crossovers fall.

``REPRO_FULL=1`` switches to the paper's full scale (50 trials, 10 epsilon
values, full datasets); the default scale finishes the whole suite in a few
minutes.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np
import pytest

from repro import Database, Domain, Policy, PolicyEngine, RangeQuery
from repro.experiments import default_scale
from repro.experiments.results import ResultTable

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale():
    """The experiment scale for every benchmark (env-switchable)."""
    return default_scale()


@pytest.fixture(scope="session")
def engine_throughput_probe():
    """The engine-vs-loop range throughput probe (fixture indirection so the
    root pytest run can reach it without importing this module by name —
    ``import conftest`` resolves to ``tests/conftest.py`` there)."""
    return engine_range_throughput


def engine_range_throughput(
    size: int,
    n_queries: int,
    theta: int,
    n_tuples: int | None = None,
    seed: int = 20140623,
    repeats: int = 3,
) -> dict:
    """Measure PolicyEngine batch answering vs per-query raw OH calls.

    Releases one raw (``consistent=False``) OH synopsis, answers the same
    ``n_queries`` random range queries through ``PolicyEngine.answer`` and
    through a per-query ``_RawOHAnswerer.range()`` loop, verifies the two
    are bitwise identical, and returns queries/sec for both paths.  Shared
    by the tier-1 smoke test (tiny scale) and the throughput benchmark.
    """
    rng = np.random.default_rng(seed)
    domain = Domain.integers("v", size)
    db = Database.from_indices(
        domain, rng.integers(0, size, size=n_tuples or 2 * size)
    )
    policy = Policy.distance_threshold(domain, theta)
    engine = PolicyEngine(policy, 0.5, options={"range": {"consistent": False}})
    released = engine.release(db, "range", rng=np.random.default_rng(seed))

    los = rng.integers(0, size, size=n_queries)
    his = rng.integers(0, size, size=n_queries)
    los, his = np.minimum(los, his), np.maximum(los, his)
    queries = [RangeQuery(domain, int(a), int(b)) for a, b in zip(los, his)]

    t_engine = float("inf")
    for _ in range(repeats):
        released._pext = None  # fresh materialization each repeat
        t0 = time.perf_counter()
        batch = engine.answer(queries, releases={"range": released})
        t_engine = min(t_engine, time.perf_counter() - t0)

    t0 = time.perf_counter()
    loop = np.array([released.range(int(a), int(b)) for a, b in zip(los, his)])
    t_loop = time.perf_counter() - t0

    assert np.array_equal(batch, loop), "engine batch diverged from scalar answers"
    return {
        "size": size,
        "n_queries": n_queries,
        "theta": theta,
        "engine_qps": n_queries / t_engine,
        "loop_qps": n_queries / t_loop,
        "speedup": t_loop / t_engine,
    }


def record(table: ResultTable, name: str) -> ResultTable:
    """Persist and display a result table; returns it for assertions."""
    table.to_csv(RESULTS_DIR / f"{name}.csv")
    print()
    print(table.format_text())
    return table
