"""Differentially-private baseline comparison for range queries: the
hierarchical mechanism (uniform and geometric budgets), the Haar wavelet
mechanism, and — for contrast — the ordered mechanism at its line-graph
policy, all on the Figure 2(b) workload.

This is the paper's Section 7.2 literature context made executable: all
DP baselines land in the same O(log^3 |T|/eps^2) family, while the
Blowfish line-graph release sits orders of magnitude below all of them.
"""

import numpy as np
from conftest import record

from repro import Policy, PolicyEngine
from repro.analysis import random_range_queries, true_range_answers
from repro.core.rng import ensure_rng, spawn
from repro.datasets import adult_capital_loss_dataset
from repro.experiments.results import ResultTable
from repro.mechanisms import WaveletMechanism


def _run(bench_scale):
    db = adult_capital_loss_dataset(bench_scale.adult_n, rng=bench_scale.seed)
    rng = ensure_rng(bench_scale.seed)
    los, his = random_range_queries(db.domain.size, bench_scale.n_range_queries, rng)
    truth = true_range_answers(db.cumulative_histogram(), los, his)
    dp = Policy.differential_privacy(db.domain)
    line = Policy.line(db.domain)
    table = ResultTable("DP baselines vs the Blowfish line policy", y_label="range query MSE")
    # the registry resolves the hierarchical baseline for the complete graph
    # and the ordered mechanism for the line graph; the wavelet row stays a
    # direct construction (it is deliberately not a registry default)
    mechanisms = {
        "hierarchical/uniform": lambda eps: PolicyEngine(dp, eps).mechanism("range"),
        "hierarchical/geometric": lambda eps: PolicyEngine(
            dp, eps, options={"range": {"budget": "geometric"}}
        ).mechanism("range"),
        "wavelet": lambda eps: WaveletMechanism(dp, eps),
        "ordered@line": lambda eps: PolicyEngine(line, eps).mechanism("range"),
    }
    for name, factory in mechanisms.items():
        for eps in bench_scale.epsilons:
            mech = factory(eps)
            errs = []
            for trial_rng in spawn(rng, bench_scale.trials):
                rel = mech.release(db, rng=trial_rng)
                errs.append(float(np.mean((rel.ranges(los, his) - truth) ** 2)))
            errs = np.asarray(errs)
            table.add(name, eps, errs.mean(), np.percentile(errs, 25), np.percentile(errs, 75))
    return table


def test_baselines_range(benchmark, bench_scale):
    table = benchmark.pedantic(lambda: _run(bench_scale), rounds=1, iterations=1)
    record(table, "baselines_range")

    for eps in bench_scale.epsilons:
        hier = table.value("hierarchical/uniform", eps)
        wave = table.value("wavelet", eps)
        line = table.value("ordered@line", eps)
        # the DP baselines are one family ...
        assert 0.05 < hier / wave < 20
        # ... and the Blowfish line release beats them all by a wide margin
        assert line < 0.05 * min(hier, wave)
