"""Multi-threaded serving: correct budget totals and the plan-cache win.

Two claims about :class:`repro.api.BlowfishService` under a thread pool:

* **Correctness** — 16 threads hammering ``handle()`` with the *same
  brand-new session key* construct exactly one :class:`Session` ledger,
  release exactly once, and the epsilon reported across responses sums to
  exactly what that ledger recorded (no lost or double spends); parallel
  ``plan`` ops return answers bitwise identical to serial execution.
* **Speed** — repeated identical workloads skip candidate scoring via the
  cross-tenant :class:`PlanCache`: the cached-plan path is measurably
  faster than cold planning (a 4,400-query mixed workload over
  |T| = 20,000, where scoring runs the O(q * |T|) mask statistics), with
  the cached plan's executed answers bitwise identical to the cold plan's.

Writes ``benchmarks/results/concurrent_serving.csv``.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from conftest import record

from repro import Database, Domain, Policy, Workload
from repro.api import BlowfishService
from repro.experiments.results import ResultTable
from repro.plan import Executor, QueryGroup

SIZE = 20_000
N_TUPLES = 40_000
N_RANGES = 4_000
N_COUNTS = 400
THETA = 2
EPSILON = 0.5
SEED = 20140623
N_THREADS = 16
REPEATS = 5


def _setting():
    rng = np.random.default_rng(SEED)
    domain = Domain.integers("v", SIZE)
    db = Database.from_indices(domain, rng.integers(0, SIZE, size=N_TUPLES))
    los = rng.integers(0, SIZE, size=N_RANGES)
    his = rng.integers(0, SIZE, size=N_RANGES)
    los, his = np.minimum(los, his), np.maximum(los, his)
    starts = rng.integers(0, SIZE - 500, size=N_COUNTS)
    widths = rng.integers(50, 500, size=N_COUNTS)
    masks = np.zeros((N_COUNTS, SIZE), dtype=bool)
    for i, (s, w) in enumerate(zip(starts, widths)):
        masks[i, s : s + w] = True
    workload = Workload(
        domain,
        [QueryGroup.ranges(los, his), QueryGroup.counts(masks, name="bands")],
    )
    service = BlowfishService()
    service.register_dataset("data", db)
    return service, domain, db, workload, (los, his)


def test_concurrent_totals_and_plan_cache_speedup():
    service, domain, db, workload, (los, his) = _setting()
    policy = Policy.distance_threshold(domain, THETA)

    # -- correctness: one ledger, no lost spends, same new session key --------
    request = {
        "policy": policy.to_spec(),
        "epsilon": EPSILON,
        "dataset": {"name": "data"},
        "queries": {"kind": "range_batch", "los": los.tolist(), "his": his.tolist()},
        "session": "hammered",
        "budget": 4 * EPSILON,
    }
    with ThreadPoolExecutor(N_THREADS) as pool:
        responses = list(pool.map(lambda _: service.handle(dict(request)), range(N_THREADS)))
    assert all(r["ok"] for r in responses), responses
    assert len(service._sessions) == 1, "racing handles built more than one ledger"
    (session,) = service._sessions.values()
    reported = sum(r["meta"]["epsilon_spent"] for r in responses)
    ledger = session.accountant.sequential_total()
    assert abs(reported - ledger) < 1e-12, (reported, ledger)
    assert abs(ledger - EPSILON) < 1e-12, ledger  # exactly one release
    assert [r["meta"]["release_cache"]["range"] for r in responses].count("miss") == 1
    first = responses[0]["answers"]
    assert all(r["answers"] == first for r in responses)

    # -- parallel plan ops: bitwise identical to serial -----------------------
    plan_request = {
        "op": "plan",
        "policy": policy.to_spec(),
        "epsilon": EPSILON,
        "dataset": {"name": "data"},
        "queries": workload.to_spec(),
        "seed": SEED,
    }
    serial_service, *_ = _setting()
    serial = [serial_service.handle(dict(plan_request)) for _ in range(N_THREADS)]
    with ThreadPoolExecutor(N_THREADS) as pool:
        parallel = list(
            pool.map(lambda _: service.handle(dict(plan_request)), range(N_THREADS))
        )
    assert all(r["ok"] for r in serial + parallel)
    for r in parallel:
        assert r["answers"] == serial[0]["answers"], "parallel diverged from serial"
    assert service.pool.plan_cache.stats()["size"] >= 1

    # -- speed: cached plans skip candidate scoring ---------------------------
    engine = service.pool.get(policy, EPSILON)
    cold = warm = float("inf")
    for _ in range(REPEATS):
        service.pool.plan_cache.clear()
        t0 = time.perf_counter()
        plan_cold, state = engine.plan_with_meta(workload)
        cold = min(cold, time.perf_counter() - t0)
        assert state == "miss"
        t0 = time.perf_counter()
        plan_warm, state = engine.plan_with_meta(workload)
        warm = min(warm, time.perf_counter() - t0)
        assert state == "hit"
        assert plan_warm is plan_cold  # the cached object itself

    # cached plans execute bitwise-identically to cold-compiled ones
    service.pool.plan_cache.clear()
    fresh, _ = engine.plan_with_meta(workload)
    a = Executor(engine).run(fresh, db, rng=np.random.default_rng(SEED)).answers
    cached, _ = engine.plan_with_meta(workload)
    b = Executor(engine).run(cached, db, rng=np.random.default_rng(SEED)).answers
    assert np.array_equal(a, b)

    table = ResultTable(
        f"Concurrent serving ({N_THREADS} threads, {N_RANGES + N_COUNTS} mixed "
        f"queries, |T|={SIZE}, theta={THETA})",
        x_label="path (0=cold plan, 1=cached plan)",
        y_label="value",
    )
    for i, (label, t) in enumerate((("cold", cold), ("cached", warm))):
        table.add("plan-latency-ms", i, t * 1e3, t * 1e3, t * 1e3)
    table.add("speedup", 0, cold / warm, cold / warm, cold / warm)
    record(table, "concurrent_serving")

    print(
        f"cold plan {cold * 1e3:.2f}ms, cached {warm * 1e3:.2f}ms "
        f"({cold / warm:.1f}x); ledger total {ledger:g} across {N_THREADS} "
        f"racing requests"
    )

    assert warm <= cold * 0.5, (
        f"cached-plan path ({warm * 1e3:.2f}ms) is not measurably faster than "
        f"cold planning ({cold * 1e3:.2f}ms)"
    )
