"""Measure the planner cost model's calibration constants, per dataset family.

Runs every range/histogram strategy over a grid of policies and epsilons,
compares the measured per-query MSE with the *raw* analytic formula
(:mod:`repro.analysis.bounds` with the calibration factor divided out), and
prints the median ratio per ``(strategy, consistent)`` pair — the values
baked into ``repro.analysis.bounds.COST_MODEL_FITS`` (the
``"synthetic-grid"`` entry is the legacy ``CALIBRATION`` table).

Run with::

    PYTHONPATH=src python benchmarks/calibrate_cost_model.py [--family NAME]
        [--trials N]

``--family`` picks the dataset family to fit (``synthetic-grid`` — the
spiky mixture the shipped constants were measured on — or ``uniform``;
``all`` fits every family).  The output block is ready to paste into
``COST_MODEL_FITS``; deployments serving a different data distribution
re-fit here and activate the result with
``repro.analysis.bounds.set_active_calibration``.

Not a test: this is the reproducible provenance of the constants.  Re-run
after changing a mechanism's post-processing and update the fits when the
medians move materially.  For the with-inference prefix mechanisms the
per-theta ratios decay roughly as ``theta^-b``; the fitted exponents land
in the same block (slope of log(ratio) against log(theta) over this grid).
"""

from __future__ import annotations

import argparse
import math
import statistics

import numpy as np

from repro import Database, Domain, Policy, PolicyEngine
from repro.analysis.bounds import calibration_factor, predicted_range_query_mse
from repro.analysis.error import random_range_queries, true_range_answers
from repro.core.queries import CumulativeHistogramQuery, HistogramQuery

SIZE = 1024  # the synthetic families' grid; real families use their own domain
N_TUPLES = 20_000
N_QUERIES = 2_000
TRIALS = 24
EPSILONS = (0.25, 1.0)
THETAS = (1, 2, 4, 16, 64, 256)
SEED = 20140623


def _spiky_database() -> Database:
    rng = np.random.default_rng(SEED)
    # spiky mixture: ~half the mass in a few narrow bands, the rest uniform
    bands = rng.normal((100, 380, 700), (8, 20, 15), size=(N_TUPLES // 2, 3))
    spiky = bands[np.arange(N_TUPLES // 2), rng.integers(0, 3, N_TUPLES // 2)]
    flat = rng.uniform(0, SIZE, N_TUPLES - N_TUPLES // 2)
    values = np.clip(np.concatenate([spiky, flat]), 0, SIZE - 1).astype(np.int64)
    return Database.from_indices(Domain.integers("v", SIZE), values)


def _uniform_database() -> Database:
    rng = np.random.default_rng(SEED)
    values = rng.integers(0, SIZE, N_TUPLES)
    return Database.from_indices(Domain.integers("v", SIZE), values)


def _adult_database() -> Database:
    from repro.datasets import adult_capital_loss_dataset

    return adult_capital_loss_dataset(rng=SEED)


def _twitter_database() -> Database:
    from repro.datasets import twitter_latitude_dataset

    return twitter_latitude_dataset(rng=SEED)


def _skin_database() -> Database:
    from repro.datasets import skin_dataset, skin_domain

    # the R-channel projection of the B x G x R grid: the 1-D ordered
    # workload the paper's skin experiments range over
    db3d = skin_dataset(rng=SEED)
    r = np.asarray(db3d.indices) % skin_domain().shape[-1]
    return Database.from_indices(Domain.integers("R", 256), r.astype(np.int64))


#: dataset family name -> (database builder, distance thresholds to fit
#: over); each family gets its own COST_MODEL_FITS entry.  Thresholds are
#: in the domain's own attribute units — the twitter latitude domain is km
#: with 5 km cells, so its thetas are km multiples of the cell size.
FAMILIES = {
    "synthetic-grid": (_spiky_database, THETAS),
    "uniform": (_uniform_database, THETAS),
    "adult": (_adult_database, THETAS),
    "twitter": (_twitter_database, (5, 10, 20, 80, 320)),
    "skin": (_skin_database, (1, 2, 4, 16, 64)),
}


def measured_mse(
    engine: PolicyEngine, strategy: str, db, los, his, truth, seed: int, trials: int
) -> float:
    errs = []
    for t in range(trials):
        rel = engine.release(db, "range", rng=np.random.default_rng((seed, t)), strategy=strategy)
        errs.append(float(np.mean((rel.ranges(los, his) - truth) ** 2)))
    return float(np.mean(errs))


def _theta_exponent(by_theta: dict[int, list[float]]) -> float | None:
    """Least-squares slope of log(ratio) against log(theta), theta > 1."""
    xs, ys = [], []
    for theta, vals in by_theta.items():
        if theta and theta > 1:
            xs.append(math.log(theta))
            ys.append(math.log(statistics.median(vals)))
    if len(xs) < 2:
        return None
    mx, my = sum(xs) / len(xs), sum(ys) / len(ys)
    denom = sum((x - mx) ** 2 for x in xs)
    return -(sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / denom) if denom else None


def fit_family(family: str, trials: int = TRIALS) -> None:
    builder, thetas = FAMILIES[family]
    db = builder()
    domain = db.domain
    size = domain.size
    rng = np.random.default_rng(SEED)
    los, his = random_range_queries(size, N_QUERIES, rng)
    truth = true_range_answers(db.cumulative_histogram(), los, his)

    ratios: dict[tuple[str, bool], list[float]] = {}
    per_theta: dict[str, dict[int, list[float]]] = {}
    config = 0
    for consistent in (False, True):
        for theta in tuple(thetas) + (None,):
            policy = (
                Policy.differential_privacy(domain)
                if theta is None
                else Policy.distance_threshold(domain, theta)
            )
            for eps in EPSILONS:
                engine = PolicyEngine(
                    policy, eps, options={"range": {"consistent": consistent}}
                )
                for strategy in engine.registry.candidates("range", policy):
                    config += 1
                    sens_q = (
                        HistogramQuery(domain)
                        if strategy == "hierarchical"
                        else CumulativeHistogramQuery(domain)
                    )
                    sens = None
                    try:
                        sens = engine.sensitivity(sens_q)
                        index_gap = (
                            None if theta is None else int(policy.graph.max_edge_index_gap())
                        )
                        # divide the calibrated prediction back out to the raw
                        # analytic formula (same theta proxy as the model)
                        theta_proxy = (
                            max(sens, 1.0)
                            if strategy == "ordered"
                            else index_gap
                            if strategy == "ordered-hierarchical"
                            else None
                        )
                        raw = predicted_range_query_mse(
                            strategy,
                            size,
                            eps,
                            sensitivity=sens,
                            theta=index_gap,
                            consistent=consistent,
                        ) / calibration_factor(strategy, consistent, theta=theta_proxy)
                        got = measured_mse(
                            engine, strategy, db, los, his, truth, config, trials
                        )
                    except Exception as exc:  # unscoreable corner: report and move on
                        print(f"skip {strategy} theta={theta} eps={eps}: {exc}")
                        continue
                    ratio = got / raw if raw > 0 else float("nan")
                    ratios.setdefault((strategy, consistent), []).append(ratio)
                    if consistent and theta is not None:
                        per_theta.setdefault(strategy, {}).setdefault(theta, []).append(ratio)
                    print(
                        f"{strategy:22s} consistent={consistent!s:5s} theta={theta!s:5s} "
                        f"eps={eps:<5g} measured={got:12.2f} raw={raw:12.2f} ratio={ratio:.3f}"
                    )

    # ready to paste into repro.analysis.bounds.COST_MODEL_FITS
    print(f"\nCOST_MODEL_FITS[{family!r}] = {{")
    print('    "constants": {')
    for (strategy, consistent), vals in sorted(ratios.items()):
        print(f"        ({strategy!r}, {consistent}): {statistics.median(vals):.2f},")
    print("    },")
    print('    "theta_exponents": {')
    for strategy, by_theta in sorted(per_theta.items()):
        b = _theta_exponent(by_theta)
        if b is not None and b > 0.05:
            print(f"        {strategy!r}: {b:.2f},")
    print("    },")
    print(
        f'    "provenance": "benchmarks/calibrate_cost_model.py --family {family}: '
        f'|T|={size}, thetas {thetas[0]}..{thetas[-1]}, eps {EPSILONS}, '
        f'{trials} trials",'
    )
    print("}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--family", default="synthetic-grid", choices=(*FAMILIES, "all"),
        help="dataset family to fit (default: synthetic-grid)",
    )
    parser.add_argument(
        "--trials", type=int, default=TRIALS, help=f"trials per config (default {TRIALS})"
    )
    args = parser.parse_args()
    for family in FAMILIES if args.family == "all" else (args.family,):
        print(f"=== dataset family: {family} ===")
        fit_family(family, trials=args.trials)


if __name__ == "__main__":
    main()
