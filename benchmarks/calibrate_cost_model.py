"""Measure the planner cost model's calibration constants.

Runs every range/histogram strategy over a grid of policies and epsilons,
compares the measured per-query MSE with the *raw* analytic formula
(:mod:`repro.analysis.bounds` with the calibration factor divided out), and
prints the median ratio per ``(strategy, consistent)`` pair — the values
baked into ``repro.analysis.bounds.CALIBRATION``.

Run with::

    PYTHONPATH=src python benchmarks/calibrate_cost_model.py

Not a test: this is the reproducible provenance of the constants.  Re-run
after changing a mechanism's post-processing and update CALIBRATION when
the medians move materially.  For the with-inference prefix mechanisms the
per-theta ratios decay roughly as ``theta^-b``; the fitted exponents live
in ``repro.analysis.bounds.INFERENCE_THETA_EXPONENT`` (slope of
log(ratio) against log(theta) over this grid).
"""

from __future__ import annotations

import statistics

import numpy as np

from repro import Database, Domain, Policy, PolicyEngine
from repro.analysis.bounds import calibration_factor, predicted_range_query_mse
from repro.analysis.error import random_range_queries, true_range_answers
from repro.core.queries import CumulativeHistogramQuery, HistogramQuery

SIZE = 1024
N_TUPLES = 20_000
N_QUERIES = 2_000
TRIALS = 24
EPSILONS = (0.25, 1.0)
THETAS = (1, 2, 4, 16, 64, 256)
SEED = 20140623


def _database() -> Database:
    rng = np.random.default_rng(SEED)
    # spiky mixture: ~half the mass in a few narrow bands, the rest uniform
    bands = rng.normal((100, 380, 700), (8, 20, 15), size=(N_TUPLES // 2, 3))
    spiky = bands[np.arange(N_TUPLES // 2), rng.integers(0, 3, N_TUPLES // 2)]
    flat = rng.uniform(0, SIZE, N_TUPLES - N_TUPLES // 2)
    values = np.clip(np.concatenate([spiky, flat]), 0, SIZE - 1).astype(np.int64)
    return Database.from_indices(Domain.integers("v", SIZE), values)


def measured_mse(engine: PolicyEngine, strategy: str, db, los, his, truth, seed: int) -> float:
    errs = []
    for t in range(TRIALS):
        rel = engine.release(db, "range", rng=np.random.default_rng((seed, t)), strategy=strategy)
        errs.append(float(np.mean((rel.ranges(los, his) - truth) ** 2)))
    return float(np.mean(errs))


def main() -> None:
    db = _database()
    domain = db.domain
    rng = np.random.default_rng(SEED)
    los, his = random_range_queries(SIZE, N_QUERIES, rng)
    truth = true_range_answers(db.cumulative_histogram(), los, his)

    ratios: dict[tuple[str, bool], list[float]] = {}
    config = 0
    for consistent in (False, True):
        for theta in THETAS + (None,):
            policy = (
                Policy.differential_privacy(domain)
                if theta is None
                else Policy.distance_threshold(domain, theta)
            )
            for eps in EPSILONS:
                engine = PolicyEngine(
                    policy, eps, options={"range": {"consistent": consistent}}
                )
                for strategy in engine.registry.candidates("range", policy):
                    config += 1
                    sens_q = (
                        HistogramQuery(domain)
                        if strategy == "hierarchical"
                        else CumulativeHistogramQuery(domain)
                    )
                    sens = None
                    try:
                        sens = engine.sensitivity(sens_q)
                        index_gap = (
                            None if theta is None else int(policy.graph.max_edge_index_gap())
                        )
                        # divide the calibrated prediction back out to the raw
                        # analytic formula (same theta proxy as the model)
                        theta_proxy = (
                            max(sens, 1.0)
                            if strategy == "ordered"
                            else index_gap
                            if strategy == "ordered-hierarchical"
                            else None
                        )
                        raw = predicted_range_query_mse(
                            strategy,
                            SIZE,
                            eps,
                            sensitivity=sens,
                            theta=index_gap,
                            consistent=consistent,
                        ) / calibration_factor(strategy, consistent, theta=theta_proxy)
                        got = measured_mse(engine, strategy, db, los, his, truth, config)
                    except Exception as exc:  # unscoreable corner: report and move on
                        print(f"skip {strategy} theta={theta} eps={eps}: {exc}")
                        continue
                    ratio = got / raw if raw > 0 else float("nan")
                    ratios.setdefault((strategy, consistent), []).append(ratio)
                    print(
                        f"{strategy:22s} consistent={consistent!s:5s} theta={theta!s:5s} "
                        f"eps={eps:<5g} measured={got:12.2f} raw={raw:12.2f} ratio={ratio:.3f}"
                    )

    print("\nCALIBRATION = {")
    for (strategy, consistent), vals in sorted(ratios.items()):
        print(f"    ({strategy!r}, {consistent}): {statistics.median(vals):.2f},")
    print("}")


if __name__ == "__main__":
    main()
