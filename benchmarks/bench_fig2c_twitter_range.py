"""Figure 2(c): range-query MSE vs epsilon on twitter latitude.

Paper's claims checked: same monotone-in-theta ordering as Figure 2(b) on
the 400-cell latitude domain, with theta=5km (one cell) matching the
ordered mechanism.
"""

from conftest import record

from repro.analysis import ordered_range_error_bound
from repro.experiments.figure2 import figure_2c


def test_fig2c_twitter_range(benchmark, bench_scale):
    table = benchmark.pedantic(lambda: figure_2c(bench_scale), rounds=1, iterations=1)
    record(table, "fig2c_twitter_range")

    eps_hi = max(bench_scale.epsilons)
    full = table.value("theta=full domain", eps_hi)
    km500 = table.value("theta=500km", eps_hi)
    km50 = table.value("theta=50km", eps_hi)
    km5 = table.value("theta=5km", eps_hi)
    assert full > km500 > km50 > km5
    assert full / km5 > 20
    assert km5 <= ordered_range_error_bound(eps_hi) * 1.5
