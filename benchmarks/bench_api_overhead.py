"""JSON façade overhead: BlowfishService.handle vs direct PolicyEngine.answer.

The serving boundary (:mod:`repro.api`) must be cheap enough that a
deployment never has a reason to bypass it.  This benchmark submits the
same policy + 10k-query range batch both ways at |T| = 1e5:

* **direct** — pre-built ``RangeQuery`` objects through
  ``PolicyEngine.answer`` (release + one vectorized pass);
* **façade** — the request as a decoded JSON document through
  ``BlowfishService.handle`` (spec validation, pool lookup, session,
  response assembly), on an ephemeral session so every call re-releases
  exactly like the direct path.

Asserted claims:

* same seed => the façade's answers are *bitwise identical* to direct use
  (both per-query spec lists and the compact ``range_batch`` form), and
* best-of-``REPEATS`` façade latency is < 10% above direct.
"""

import json
import time

import numpy as np

from conftest import record

from repro import Database, Domain, Policy, PolicyEngine, RangeQuery
from repro.api import BlowfishService
from repro.experiments.results import ResultTable

SIZE = 100_000
THETA = 4_096
N_QUERIES = 10_000
EPSILON = 0.5
SEED = 20140623
REPEATS = 5


def _workload():
    rng = np.random.default_rng(SEED)
    domain = Domain.integers("v", SIZE)
    db = Database.from_indices(domain, rng.integers(0, SIZE, size=2 * SIZE))
    policy = Policy.distance_threshold(domain, THETA)
    los = rng.integers(0, SIZE, size=N_QUERIES)
    his = rng.integers(0, SIZE, size=N_QUERIES)
    los, his = np.minimum(los, his), np.maximum(los, his)
    return domain, db, policy, los, his


def _best(fn, repeats=REPEATS):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _best_interleaved(fns, repeats=REPEATS):
    """Best-of timings with the candidates interleaved round-robin, so
    machine drift (thermal, cache pressure) hits every path equally."""
    bests = [float("inf")] * len(fns)
    outs = [None] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            outs[i] = fn()
            bests[i] = min(bests[i], time.perf_counter() - t0)
    return bests, outs


def api_overhead_probe() -> dict:
    domain, db, policy, los, his = _workload()
    queries = [RangeQuery(domain, int(a), int(b)) for a, b in zip(los, his)]
    options = {"range": {"consistent": False}}

    engine = PolicyEngine(policy, EPSILON, options=options)

    service = BlowfishService()
    service.register_dataset("bench", db)
    base = {
        "policy": policy.to_spec(),
        "epsilon": EPSILON,
        "options": options,
        "dataset": {"name": "bench"},
        "seed": SEED,
    }
    # the wire bytes a client would actually send (decode cost reported,
    # not asserted: transports own it)
    encoded = json.dumps(
        {**base, "queries": [{"kind": "range", "lo": int(a), "hi": int(b)} for a, b in zip(los, his)]}
    )
    t_decode, request = _best(lambda: json.loads(encoded), repeats=3)

    batch_request = json.loads(
        json.dumps(
            {**base, "queries": {"kind": "range_batch", "los": los.tolist(), "his": his.tolist()}}
        )
    )
    (t_direct, t_facade, t_batch), (direct, response, batch_response) = _best_interleaved(
        [
            lambda: engine.answer(queries, db, rng=np.random.default_rng(SEED)),
            lambda: service.handle(request),
            lambda: service.handle(batch_request),
        ]
    )
    assert response["ok"], response
    assert np.array_equal(np.array(response["answers"]), direct), (
        "façade answers diverged from direct PolicyEngine use"
    )
    assert np.array_equal(np.array(batch_response["answers"]), direct)

    return {
        "direct_ms": t_direct * 1e3,
        "facade_ms": t_facade * 1e3,
        "batch_ms": t_batch * 1e3,
        "decode_ms": t_decode * 1e3,
        "overhead": t_facade / t_direct - 1.0,
        "batch_overhead": t_batch / t_direct - 1.0,
    }


def test_api_overhead_under_10_percent():
    row = api_overhead_probe()

    table = ResultTable(
        f"JSON façade overhead ({N_QUERIES} range queries, |T|={SIZE})",
        x_label="path",
        y_label="best latency (ms)",
    )
    for label, key in (
        ("direct engine.answer", "direct_ms"),
        ("facade per-query specs", "facade_ms"),
        ("facade range_batch spec", "batch_ms"),
        ("json.loads (transport)", "decode_ms"),
    ):
        table.add(label, 0, row[key], row[key], row[key])
    record(table, "api_overhead")

    print(
        f"direct {row['direct_ms']:.1f}ms, facade {row['facade_ms']:.1f}ms "
        f"(+{row['overhead'] * 100:.1f}%), batch form {row['batch_ms']:.1f}ms "
        f"(+{row['batch_overhead'] * 100:.1f}%), decode {row['decode_ms']:.1f}ms"
    )
    assert row["overhead"] < 0.10, (
        f"JSON façade adds {row['overhead'] * 100:.1f}% over direct "
        f"PolicyEngine.answer (limit 10%)"
    )
    assert row["batch_overhead"] < 0.10
