"""Figure 1(c): k-means on the 4-D synthetic dataset under G^{L1,theta}.

Paper's claims checked: with n=1000 and four dimensions the Laplace ratio
is far from 1 at small epsilon, while tight thresholds stay close to the
non-private objective.
"""

from conftest import record

from repro.experiments.figure1 import SYNTHETIC_THETAS, figure_1c


def test_fig1c_synthetic_kmeans(benchmark, bench_scale):
    table = benchmark.pedantic(lambda: figure_1c(bench_scale), rounds=1, iterations=1)
    record(table, "fig1c_synthetic_kmeans")

    eps_lo = min(bench_scale.epsilons)
    laplace_lo = table.value("laplace", eps_lo)
    best_blowfish = min(
        table.value(f"blowfish|{theta:g}", eps_lo) for theta in SYNTHETIC_THETAS
    )
    assert best_blowfish < laplace_lo
    # the small, high-dimensional dataset is where Laplace hurts most
    assert laplace_lo > 1.5
