"""Planner end-to-end vs fixed per-family strategies on a mixed workload.

A 10k-query workload (9,000 random ranges + 980 interval counts + 20
linear queries) over |T| = 50,000 under a ``G^{d,2}`` policy — the regime
where the cost model's choices diverge from the registry's fixed dispatch
(ordered beats the OH hybrid; interval counts ride the prefix release for
free instead of paying for a Laplace histogram).

Asserted claims:

* planning + execution end-to-end latency is at most fixed-dispatch
  latency + 10%;
* the planner's measured MSE is at least as good as the fixed dispatch on
  every family present (at *no more* total epsilon — here strictly less:
  2 releases vs 3);
* a fixed seed makes the planner's answers bitwise-deterministic.

Writes ``benchmarks/results/planner_mixed.csv``.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import record

from repro import Database, Domain, Policy, PolicyEngine, Workload
from repro.analysis.error import true_range_answers
from repro.experiments.results import ResultTable
from repro.plan import Executor, QueryGroup

SIZE = 50_000
N_TUPLES = 100_000
N_RANGES = 9_000
N_COUNTS = 980
N_LINEAR = 20
THETA = 2
EPSILON = 0.5
SEED = 20140623
REPEATS = 3
TRIALS = 5


def _setting():
    rng = np.random.default_rng(SEED)
    domain = Domain.integers("v", SIZE)
    db = Database.from_indices(domain, rng.integers(0, SIZE, size=N_TUPLES))
    los = rng.integers(0, SIZE, size=N_RANGES)
    his = rng.integers(0, SIZE, size=N_RANGES)
    los, his = np.minimum(los, his), np.maximum(los, his)
    # interval counts ("bands"): contiguous supports of widths 50..500
    starts = rng.integers(0, SIZE - 500, size=N_COUNTS)
    widths = rng.integers(50, 500, size=N_COUNTS)
    masks = np.zeros((N_COUNTS, SIZE), dtype=bool)
    for i, (s, w) in enumerate(zip(starts, widths)):
        masks[i, s : s + w] = True
    weights = rng.random((N_LINEAR, N_TUPLES)) / N_TUPLES
    workload = Workload(
        domain,
        [
            QueryGroup.ranges(los, his),
            QueryGroup.counts(masks, name="bands"),
            QueryGroup.linear(weights, name="weighted-means"),
        ],
    )
    truth = {
        "range": true_range_answers(db.cumulative_histogram(), los, his),
        "bands": masks.astype(np.float64) @ db.histogram(),
        "weighted-means": weights @ db.points()[:, 0],
    }
    engine = PolicyEngine(Policy.distance_threshold(domain, THETA), EPSILON)
    return engine, db, workload, truth


def _run(engine, db, workload, optimize, seed):
    """Plan + execute end to end (fresh releases, ephemeral accounting)."""
    plan = engine.plan(workload, optimize=optimize)
    result = Executor(engine).run(plan, db, rng=np.random.default_rng(seed))
    return plan, result


def _mse(result, truth) -> dict[str, float]:
    return {
        name: float(np.mean((result.by_group[name] - truth[name]) ** 2))
        for name in truth
    }


def test_planner_matches_or_beats_fixed_strategies():
    engine, db, workload, truth = _setting()

    # latency: best-of-REPEATS, interleaved so drift hits both paths
    best = {"fixed": float("inf"), "planner": float("inf")}
    outputs = {}
    for _ in range(REPEATS):
        for label, optimize in (("fixed", False), ("planner", True)):
            t0 = time.perf_counter()
            outputs[label] = _run(engine, db, workload, optimize, SEED)
            best[label] = min(best[label], time.perf_counter() - t0)

    plan_fixed, _ = outputs["fixed"]
    plan_auto, result_auto = outputs["planner"]
    assert plan_auto.step_for("range").strategy == "ordered"
    assert plan_auto.step_for("bands").release == plan_auto.step_for("range").release
    # strictly less budget: the bands group rides the range release
    assert plan_auto.total_epsilon < plan_fixed.total_epsilon

    # determinism: same seed, bitwise-identical answers
    _, result_again = _run(engine, db, workload, True, SEED)
    assert np.array_equal(result_auto.answers, result_again.answers)

    # accuracy: averaged over TRIALS fresh releases, planner >= fixed per family
    mses = {"fixed": [], "planner": []}
    for trial in range(TRIALS):
        for label, optimize in (("fixed", False), ("planner", True)):
            _, result = _run(engine, db, workload, optimize, (SEED, trial))
            mses[label].append(_mse(result, truth))
    avg = {
        label: {k: float(np.mean([m[k] for m in runs])) for k in truth}
        for label, runs in mses.items()
    }

    table = ResultTable(
        f"Planner vs fixed dispatch ({N_RANGES + N_COUNTS + N_LINEAR} mixed "
        f"queries, |T|={SIZE}, theta={THETA})",
        x_label="path (0=fixed, 1=planner)",
        y_label="value",
    )
    for i, label in enumerate(("fixed", "planner")):
        table.add("latency-ms", i, best[label] * 1e3, best[label] * 1e3, best[label] * 1e3)
        for k in ("range", "bands", "weighted-means"):
            table.add(f"mse-{k}", i, avg[label][k], avg[label][k], avg[label][k])
    record(table, "planner_mixed")

    print(
        f"fixed {best['fixed'] * 1e3:.1f}ms, planner {best['planner'] * 1e3:.1f}ms "
        f"({(best['planner'] / best['fixed'] - 1) * 100:+.1f}%); "
        f"range MSE {avg['fixed']['range']:.1f} -> {avg['planner']['range']:.1f}, "
        f"bands MSE {avg['fixed']['bands']:.1f} -> {avg['planner']['bands']:.1f}"
    )

    assert best["planner"] <= best["fixed"] * 1.10, (
        f"planner end-to-end {best['planner'] * 1e3:.1f}ms exceeds fixed "
        f"{best['fixed'] * 1e3:.1f}ms + 10%"
    )
    # >= equal accuracy on every family (linear uses the same mechanism on
    # both paths — different noise draws — so it only needs to stay in the
    # same noise regime; 100 Laplace samples make the MSE ratio fat-tailed)
    assert avg["planner"]["range"] <= avg["fixed"]["range"]
    assert avg["planner"]["bands"] <= avg["fixed"]["bands"]
    assert avg["planner"]["weighted-means"] <= avg["fixed"]["weighted-means"] * 2.0
