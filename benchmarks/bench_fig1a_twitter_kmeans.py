"""Figure 1(a): k-means on twitter under G^{L1,theta} vs the Laplace
mechanism.

Paper's claims checked: every Blowfish threshold policy achieves a lower
(or equal) objective ratio than differential privacy at small epsilon, and
the Laplace ratio degrades markedly as epsilon shrinks.
"""

from conftest import record

from repro.experiments.figure1 import TWITTER_THETAS_KM, figure_1a


def test_fig1a_twitter_kmeans(benchmark, bench_scale):
    table = benchmark.pedantic(lambda: figure_1a(bench_scale), rounds=1, iterations=1)
    record(table, "fig1a_twitter_kmeans")

    eps_lo = min(bench_scale.epsilons)
    laplace_lo = table.value("laplace", eps_lo)
    blowfish_ratios = [
        table.value(f"blowfish|{theta:g}km", eps_lo) for theta in TWITTER_THETAS_KM
    ]
    # Blowfish policies beat (or match) Laplace at the strictest epsilon
    assert min(blowfish_ratios) <= laplace_lo
    # everything approaches the non-private objective (>= ~1)
    for p in table.points:
        assert p.mean > 0.9
