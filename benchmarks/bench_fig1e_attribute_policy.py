"""Figure 1(e): the attribute policy G^attr vs Laplace on all datasets.

Paper's claims checked: G^attr gives an order-of-magnitude improvement on
the high-dimensional small datasets (skin01, synthetic) and little on the
large 2-D twitter data.
"""

from conftest import record

from repro.experiments.figure1 import figure_1e


def _mean_gap(table, ds, epsilons):
    gaps = [
        table.value(f"{ds}: laplace", eps) / table.value(f"{ds}: attribute", eps)
        for eps in epsilons
    ]
    return sum(gaps) / len(gaps)


def test_fig1e_attribute_policy(benchmark, bench_scale):
    table = benchmark.pedantic(lambda: figure_1e(bench_scale), rounds=1, iterations=1)
    record(table, "fig1e_attribute_policy")

    eps = bench_scale.epsilons
    # the high-dimensional small datasets benefit from G^attr ...
    for ds in ("skin01", "synth"):
        assert _mean_gap(table, ds, eps) > 1.0, ds
    # ... and much more than the large 2-D twitter data ("little gain"):
    # the strongest high-dimensional gap dominates twitter's on average
    best_highdim = max(_mean_gap(table, ds, eps) for ds in ("skin01", "synth"))
    assert best_highdim > _mean_gap(table, "twitter", eps)
