"""Theorem 7.1: the ordered mechanism answers every range query with
expected squared error at most 4/eps^2 — independent of |T| — while the
hierarchical (DP) baseline grows with log^3 |T|.

Checked empirically across domain sizes and epsilons.
"""

import numpy as np
from conftest import record

from repro import Database, Domain, Policy
from repro.analysis import (
    ordered_range_error_bound,
    random_range_queries,
    true_range_answers,
)
from repro.core.rng import ensure_rng
from repro.experiments.results import ResultTable
from repro.mechanisms import HierarchicalMechanism, OrderedMechanism


def _run(bench_scale):
    rng = ensure_rng(bench_scale.seed)
    table = ResultTable(
        "Theorem 7.1: ordered-mechanism error vs domain size",
        x_label="domain size",
        y_label="range query MSE (eps=0.5)",
    )
    eps = 0.5
    for size in (64, 512, 4096):
        domain = Domain.integers("v", size)
        db = Database.from_indices(domain, rng.integers(0, size, 5000))
        los, his = random_range_queries(size, 500, rng)
        truth = true_range_answers(db.cumulative_histogram(), los, his)
        for label, mech in (
            ("ordered", OrderedMechanism(Policy.line(domain), eps, consistent=False)),
            (
                "hierarchical",
                HierarchicalMechanism(
                    Policy.differential_privacy(domain), eps, fanout=16
                ),
            ),
        ):
            errs = []
            for t in range(bench_scale.trials):
                rel = mech.release(db, rng=t)
                errs.append(float(np.mean((rel.ranges(los, his) - truth) ** 2)))
            errs = np.asarray(errs)
            table.add(label, size, errs.mean(), np.percentile(errs, 25), np.percentile(errs, 75))
    return table


def test_thm71_ordered_error_bound(benchmark, bench_scale):
    table = benchmark.pedantic(lambda: _run(bench_scale), rounds=1, iterations=1)
    record(table, "thm71_ordered_bound")

    bound = ordered_range_error_bound(0.5)
    sizes = [64, 512, 4096]
    ordered_errs = [table.value("ordered", s) for s in sizes]
    # (1) the bound holds at every domain size
    for err in ordered_errs:
        assert err <= bound * 1.4
    # (2) flat in |T|: largest/smallest within a small factor
    assert max(ordered_errs) / min(ordered_errs) < 3.0
    # (3) the DP baseline is far above the ordered mechanism at larger |T|
    assert table.value("hierarchical", 4096) > 10 * table.value("ordered", 4096)
