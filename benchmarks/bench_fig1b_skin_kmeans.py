"""Figure 1(b): k-means on the 1% skin sample under G^{L1,theta}.

Paper's claims checked: on the small high-dimensional sample the Laplace
mechanism's error ratio is large at small epsilon, and Blowfish thresholds
sit well below it.
"""

from conftest import record

from repro.experiments.figure1 import SKIN_THETAS, figure_1b


def test_fig1b_skin_kmeans(benchmark, bench_scale):
    table = benchmark.pedantic(lambda: figure_1b(bench_scale), rounds=1, iterations=1)
    record(table, "fig1b_skin_kmeans")

    eps_lo = min(bench_scale.epsilons)
    laplace_lo = table.value("laplace", eps_lo)
    best_blowfish = min(
        table.value(f"blowfish|{theta:g}", eps_lo) for theta in SKIN_THETAS
    )
    # the paper reports close to an order of magnitude at eps=0.1
    assert best_blowfish < laplace_lo
    assert laplace_lo / best_blowfish > 1.5
