"""Observability overhead: the instrumented request path vs obs disabled.

``repro.obs`` promises near-zero cost when off and bounded cost when on:
instrumented call sites always run (``tracer().span(...)``,
``metrics().counter(...).inc()``), so the disabled path pays only the
null-singleton method calls, and the enabled path pays one lock per
recorded event.  This benchmark submits the same 10k-query range batch
through ``BlowfishService.handle`` under three configurations —

* **off** — metrics and tracing disabled (the no-op singletons),
* **metrics** — the striped registry on, tracing off (the expected
  production default),
* **tracing** — metrics on plus a process-wide tracer (every request
  builds its span tree),

interleaved round-robin and scored best-of-``REPEATS``.  Asserted claims:

* same seed => bitwise-identical answers under every configuration
  (observability never perturbs the mechanism), and
* metrics-on stays within 5% of off; tracing-on within 15%.
"""

import time

import numpy as np

from conftest import record

from repro import Database, Domain, Policy, obs
from repro.api import BlowfishService
from repro.experiments.results import ResultTable

SIZE = 100_000
THETA = 4_096
N_QUERIES = 10_000
EPSILON = 0.5
SEED = 20140623
REPEATS = 5

METRICS_LIMIT = 0.05
TRACING_LIMIT = 0.15


def _service_and_request():
    rng = np.random.default_rng(SEED)
    domain = Domain.integers("v", SIZE)
    db = Database.from_indices(domain, rng.integers(0, SIZE, size=2 * SIZE))
    policy = Policy.distance_threshold(domain, THETA)
    los = rng.integers(0, SIZE, size=N_QUERIES)
    his = rng.integers(0, SIZE, size=N_QUERIES)
    los, his = np.minimum(los, his), np.maximum(los, his)

    service = BlowfishService()
    service.register_dataset("bench", db)
    request = {
        "policy": policy.to_spec(),
        "epsilon": EPSILON,
        "options": {"range": {"consistent": False}},
        "dataset": {"name": "bench"},
        "queries": {"kind": "range_batch", "los": los.tolist(), "his": his.tolist()},
        "seed": SEED,
    }
    return service, request


def obs_overhead_probe() -> dict:
    service, request = _service_and_request()

    def run_off():
        obs.configure(metrics=False, tracing=False)
        return service.handle(request)

    def run_metrics():
        obs.configure(metrics=True, tracing=False)
        return service.handle(request)

    def run_tracing():
        obs.configure(metrics=True, tracing=True)
        try:
            return service.handle(request)
        finally:
            obs.tracer().take()  # drain this thread's roots between rounds

    configs = [("off", run_off), ("metrics", run_metrics), ("tracing", run_tracing)]
    bests = {name: float("inf") for name, _ in configs}
    answers = {}
    try:
        for _ in range(REPEATS):
            # interleaved round-robin so machine drift hits every path equally
            for name, fn in configs:
                t0 = time.perf_counter()
                response = fn()
                bests[name] = min(bests[name], time.perf_counter() - t0)
                assert response["ok"], response
                answers[name] = response["answers"]
    finally:
        obs.configure(metrics=False, tracing=False)

    assert answers["metrics"] == answers["off"], (
        "metrics instrumentation perturbed the answers"
    )
    assert answers["tracing"] == answers["off"], (
        "tracing instrumentation perturbed the answers"
    )
    return {
        "off_ms": bests["off"] * 1e3,
        "metrics_ms": bests["metrics"] * 1e3,
        "tracing_ms": bests["tracing"] * 1e3,
        "metrics_overhead": bests["metrics"] / bests["off"] - 1.0,
        "tracing_overhead": bests["tracing"] / bests["off"] - 1.0,
    }


def test_obs_overhead_within_bounds():
    row = obs_overhead_probe()

    table = ResultTable(
        f"observability overhead ({N_QUERIES} range queries, |T|={SIZE})",
        x_label="configuration",
        y_label="best latency (ms)",
    )
    for label, key in (
        ("obs disabled", "off_ms"),
        ("metrics on, tracing off", "metrics_ms"),
        ("metrics + tracing on", "tracing_ms"),
    ):
        table.add(label, 0, row[key], row[key], row[key])
    record(table, "obs_overhead")

    print(
        f"off {row['off_ms']:.1f}ms, metrics {row['metrics_ms']:.1f}ms "
        f"(+{row['metrics_overhead'] * 100:.1f}%), tracing {row['tracing_ms']:.1f}ms "
        f"(+{row['tracing_overhead'] * 100:.1f}%)"
    )
    assert row["metrics_overhead"] < METRICS_LIMIT, (
        f"metrics-on adds {row['metrics_overhead'] * 100:.1f}% over disabled "
        f"(limit {METRICS_LIMIT * 100:.0f}%)"
    )
    assert row["tracing_overhead"] < TRACING_LIMIT, (
        f"tracing-on adds {row['tracing_overhead'] * 100:.1f}% over disabled "
        f"(limit {TRACING_LIMIT * 100:.0f}%)"
    )
