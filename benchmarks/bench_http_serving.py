"""The HTTP front end: wire overhead bounded, answers and budget exact.

A mixed seeded request stream (range batches and count batches, each
distinct query asked ``REPEATS`` times by its own client session) served
three ways:

* **in-process baseline** — ``serve_many``: the asyncio tier with
  batching/coalescing, no sockets (the PR-6 deployment);
* **HTTP, 1/2/4 workers** — :class:`~repro.net.MultiprocHTTPServer` behind
  one port, one keep-alive :class:`~repro.net.BlowfishClient` per client
  session on its own thread, budget truth in a shared SQLite ledger.

Claims asserted:

* answers over the wire are bitwise identical to the in-process tier at
  every worker count (seeded requests are deterministic; connection
  affinity keeps a session's repeats on one worker);
* the shared ledger holds exactly one spend per client session;
* the wire tax is bounded: 1-worker HTTP throughput is within
  ``MAX_HTTP_OVERHEAD``x of the in-process baseline (JSON + sockets +
  per-request HTTP framing may cost, but never an order of magnitude).

Writes ``benchmarks/results/http_serving.csv`` (req/s, p50/p99 ms per
deployment; baseline row is workers=0).
"""

from __future__ import annotations

import functools
import threading
import time

import numpy as np

from conftest import record

from repro import Database, Domain, Policy
from repro.api import BlowfishService, SQLiteLedgerStore, serve_many
from repro.experiments.results import ResultTable
from repro.net import BlowfishClient, MultiprocHTTPServer

SIZE = 2_000
N_TUPLES = 4_000
QUERIES_PER_BATCH = 200
N_DISTINCT = 8  #: distinct queries == client sessions
REPEATS = 4
THETA = 2
EPSILON = 0.5
SEED = 20140623
WORKER_COUNTS = (1, 2, 4)
MAX_HTTP_OVERHEAD = 2.5  #: max allowed baseline_rps / http_rps at 1 worker

N_REQUESTS = N_DISTINCT * REPEATS


def _domain():
    return Domain.integers("v", SIZE)


def _database():
    rng = np.random.default_rng(SEED)
    return Database.from_indices(_domain(), rng.integers(0, SIZE, size=N_TUPLES))


def _bench_service(ledger_path):
    # module-level so worker processes can rebuild it; the engine pool is
    # warmed so the timed window measures serving, not deployment startup
    ledger = None if ledger_path is None else SQLiteLedgerStore(ledger_path)
    service = BlowfishService(ledger_store=ledger)
    service.register_dataset("data", _database())
    service.pool.get(Policy.distance_threshold(_domain(), THETA), EPSILON)
    return service


def _bench_request(i):
    """Request ``i``: query ``i // REPEATS`` asked for the ``i % REPEATS``-th
    time by session ``client-{query}`` — repeats are free via the release
    cache, and connection affinity keeps them on one worker."""
    domain = _domain()
    query = i // REPEATS
    rng = np.random.default_rng(SEED + query)
    request = {
        "policy": Policy.distance_threshold(domain, THETA).to_spec(),
        "epsilon": EPSILON,
        "dataset": {"name": "data"},
        "session": f"client-{query}",
        "budget": 4 * EPSILON,
        "seed": SEED + query,
    }
    if query % 2 == 0:
        los = rng.integers(0, SIZE, size=QUERIES_PER_BATCH)
        his = rng.integers(0, SIZE, size=QUERIES_PER_BATCH)
        los, his = np.minimum(los, his), np.maximum(los, his)
        request["queries"] = {
            "kind": "range_batch",
            "los": los.tolist(),
            "his": his.tolist(),
        }
    else:
        starts = rng.integers(0, SIZE - 200, size=QUERIES_PER_BATCH // 4)
        widths = rng.integers(20, 200, size=QUERIES_PER_BATCH // 4)
        request["queries"] = [
            {"kind": "count", "support": list(range(int(s), int(s + w)))}
            for s, w in zip(starts, widths)
        ]
    return request


def _quantile(latencies, q):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _run_http(workers, ledger_path):
    """Serve the stream over HTTP: one keep-alive client per session, each
    on its own thread, requests constructed outside the timed window."""
    server = MultiprocHTTPServer(
        functools.partial(_bench_service, ledger_path), workers=workers
    )
    host, port = server.start()
    requests = {
        c: [_bench_request(c * REPEATS + j) for j in range(REPEATS)]
        for c in range(N_DISTINCT)
    }
    responses = {}
    latencies = []
    latency_lock = threading.Lock()
    errors = []
    go = threading.Event()

    def run_client(c):
        try:
            with BlowfishClient(host, port) as client:
                go.wait(30)
                out = []
                for request in requests[c]:
                    t0 = time.perf_counter()
                    response = client.handle(request)
                    dt = time.perf_counter() - t0
                    assert client.last_status == 200, response
                    out.append(response)
                    with latency_lock:
                        latencies.append(dt)
                responses[c] = out
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=run_client, args=(c,)) for c in range(N_DISTINCT)
    ]
    try:
        for t in threads:
            t.start()
        start = time.perf_counter()
        go.set()
        for t in threads:
            t.join(120)
        elapsed = time.perf_counter() - start
    finally:
        codes = server.stop(timeout=30)
    assert not errors, errors
    assert all(code == 0 for code in codes), codes
    ordered = [responses[c][j] for c in range(N_DISTINCT) for j in range(REPEATS)]
    return ordered, N_REQUESTS / elapsed, latencies


def test_http_serving_overhead_and_identity(tmp_path):
    # in-process baseline: same stream through the asyncio tier directly
    service = _bench_service(None)
    requests = [_bench_request(i) for i in range(N_REQUESTS)]
    t0 = time.perf_counter()
    base_responses, _stats = serve_many(service, requests)
    base_elapsed = time.perf_counter() - t0
    base_rps = N_REQUESTS / base_elapsed
    assert all(r["ok"] for r in base_responses), base_responses
    base_answers = [r["answers"] for r in base_responses]

    table = ResultTable(
        f"HTTP serving vs in-process tier ({N_REQUESTS} mixed requests, "
        f"{N_DISTINCT} keep-alive clients, |domain|={SIZE})",
        x_label="worker processes (0 = in-process serve_many)",
        y_label="value",
    )
    table.add("req_per_s", 0, base_rps, base_rps, base_rps)
    table.add("p50_ms", 0, base_elapsed / N_REQUESTS * 1e3, 0, 0)
    table.add("p99_ms", 0, base_elapsed / N_REQUESTS * 1e3, 0, 0)

    rps_by_workers = {}
    for workers in WORKER_COUNTS:
        ledger_path = str(tmp_path / f"ledger-{workers}.sqlite")
        responses, rps, latencies = _run_http(workers, ledger_path)

        # bitwise identity with the in-process tier, at every worker count
        assert [r["answers"] for r in responses] == base_answers, (
            f"{workers}-worker HTTP answers diverged from the in-process tier"
        )
        # exact budget truth in the shared ledger: one spend per client
        ledger = SQLiteLedgerStore(ledger_path)
        try:
            assert len(ledger.keys()) == N_DISTINCT
            for key in ledger.keys():
                assert len(ledger.entries(key)) == 1
                assert abs(ledger.total(key) - EPSILON) < 1e-12
        finally:
            ledger.close()

        rps_by_workers[workers] = rps
        table.add("req_per_s", workers, rps, rps, rps)
        table.add("p50_ms", workers, _quantile(latencies, 0.5) * 1e3, 0, 0)
        table.add("p99_ms", workers, _quantile(latencies, 0.99) * 1e3, 0, 0)
        print(
            f"{workers} worker(s): {rps:,.0f} req/s over HTTP "
            f"(in-process {base_rps:,.0f}), p50 "
            f"{_quantile(latencies, 0.5) * 1e3:.1f}ms, p99 "
            f"{_quantile(latencies, 0.99) * 1e3:.1f}ms"
        )

    record(table, "http_serving")

    overhead = base_rps / rps_by_workers[1]
    print(f"1-worker HTTP overhead vs in-process: {overhead:.2f}x")
    assert overhead < MAX_HTTP_OVERHEAD, (
        f"HTTP serving at 1 worker is {overhead:.2f}x slower than the "
        f"in-process tier (allowed < {MAX_HTTP_OVERHEAD}x) — the wire tax "
        "(JSON + sockets + framing) must stay bounded"
    )
