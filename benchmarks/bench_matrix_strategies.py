"""Analytic strategy comparison via the matrix-mechanism view.

Exact expected mean range-query errors (no sampling) for the strategies
behind every mechanism in the library, under differential privacy and
under the Blowfish line policy — the Section 7 separation computed in
closed form, including the identity/tree crossover in |T|.
"""

from conftest import record

from repro import Domain, Policy
from repro.analysis.matrix import (
    haar_strategy,
    hierarchical_strategy,
    identity_strategy,
    mean_range_query_error,
    prefix_strategy,
)
from repro.experiments.results import ResultTable


def _run():
    eps = 0.5
    table = ResultTable(
        "Exact mean range error by strategy (matrix mechanism, eps=0.5)",
        x_label="domain size",
        y_label="mean squared error",
    )
    for size in (32, 128, 512):
        line = Policy.line(Domain.integers("v", size)).graph
        entries = {
            "identity (DP)": mean_range_query_error(identity_strategy(size), size, eps),
            "hierarchical f=2 (DP)": mean_range_query_error(
                hierarchical_strategy(size, 2), size, eps
            ),
            "haar (DP)": mean_range_query_error(haar_strategy(size), size, eps),
            "prefix (DP)": mean_range_query_error(prefix_strategy(size), size, eps),
            "prefix (Blowfish line)": mean_range_query_error(
                prefix_strategy(size), size, eps, graph=line
            ),
        }
        for name, err in entries.items():
            table.add(name, size, err, err, err)
    return table


def test_matrix_strategies(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    record(table, "matrix_strategies")

    for size in (32, 128, 512):
        blowfish = table.value("prefix (Blowfish line)", size)
        for dp in ("identity (DP)", "hierarchical f=2 (DP)", "haar (DP)", "prefix (DP)"):
            assert blowfish < 0.25 * table.value(dp, size), (size, dp)
    # the DP prefix strategy is hopeless (sensitivity |T|-1) ...
    assert table.value("prefix (DP)", 512) > table.value("hierarchical f=2 (DP)", 512)
    # ... and the identity/tree crossover lands where the theory says
    assert table.value("identity (DP)", 32) < table.value("hierarchical f=2 (DP)", 32)
    assert table.value("identity (DP)", 512) > table.value("hierarchical f=2 (DP)", 512)
