"""Tier-1 smoke target for the engine perf path.

Collected by the plain root ``pytest`` run (unlike the ``bench_*`` modules,
which need an explicit ``pytest benchmarks/``), so the vectorized batch
answering path and its bitwise agreement with the scalar reference are
exercised on every PR — at a tiny scale that adds well under a second.
The full-scale numbers live in ``bench_engine_throughput.py``; the probe
itself is the ``engine_throughput_probe`` fixture in this directory's
conftest.
"""


def test_engine_throughput_smoke(engine_throughput_probe):
    row = engine_throughput_probe(size=512, n_queries=300, theta=64, repeats=1)
    # bitwise equality is asserted inside the probe; here we only require
    # the batch path to produce sane throughput figures
    assert row["engine_qps"] > 0 and row["loop_qps"] > 0


def test_engine_throughput_smoke_theta_one(engine_throughput_probe):
    # theta=1 degenerates to the ordered-mechanism S chain (no H trees)
    row = engine_throughput_probe(size=256, n_queries=100, theta=1, repeats=1)
    assert row["engine_qps"] > 0
